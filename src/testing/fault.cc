#include "testing/fault.h"

#ifdef FACILE_FAULT_INJECT

#include <cerrno>
#include <cstdlib>
#include <map>
#include <mutex>

namespace facile::testing {

namespace {

struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
    bool armed = false;
    FaultSpec spec;
};

struct Registry {
    std::mutex mu;
    std::map<std::string, SiteState> sites;
    bool chaos = false;
    std::uint64_t chaosSeed = 0;
    std::uint32_t chaosOneIn = 0;
    bool envChecked = false;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const char *s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s; ++s) {
        h ^= static_cast<std::uint8_t>(*s);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Child processes (the chaos soak's server) can't be armed through
 * the API, so chaos is also readable from the environment, once, on
 * the first hit of any site.
 */
void
checkEnvLocked(Registry &r)
{
    r.envChecked = true;
    const char *seed = std::getenv("FACILE_FAULT_SEED");
    const char *oneIn = std::getenv("FACILE_FAULT_ONE_IN");
    if (!seed || !oneIn)
        return;
    const std::uint64_t s = std::strtoull(seed, nullptr, 0);
    const std::uint64_t n = std::strtoull(oneIn, nullptr, 0);
    if (n > 0) {
        r.chaos = true;
        r.chaosSeed = s;
        r.chaosOneIn = static_cast<std::uint32_t>(n);
    }
}

} // namespace

FaultAction
faultPoint(const char *site, std::size_t len)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (!r.envChecked)
        checkEnvLocked(r);
    SiteState &st = r.sites[site];
    const std::uint64_t hit = st.hits++;

    if (st.armed && hit >= st.spec.firstHit &&
        (st.spec.count == UINT64_MAX ||
         hit < st.spec.firstHit + st.spec.count)) {
        ++st.fired;
        return {st.spec.err, st.spec.clampBytes};
    }

    if (r.chaos) {
        const std::uint64_t h =
            splitmix64(r.chaosSeed ^ fnv1a(site) ^ (hit * 0x9e3779b9ULL));
        if (h % r.chaosOneIn == 0) {
            ++st.fired;
            // Only universally safe faults: every boundary must retry
            // EINTR, and every stream boundary must tolerate short IO.
            if (len > 1 && ((h >> 32) & 1))
                return {0, 1 + static_cast<std::size_t>((h >> 33) % len)};
            return {EINTR, static_cast<std::size_t>(-1)};
        }
    }
    return {};
}

void
armFault(const std::string &site, const FaultSpec &spec)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    SiteState &st = r.sites[site];
    st.armed = true;
    st.spec = spec;
}

void
disarmFault(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it != r.sites.end())
        it->second.armed = false;
}

void
resetFaults()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.sites.clear();
    r.chaos = false;
    r.chaosSeed = 0;
    r.chaosOneIn = 0;
    // Leave envChecked set: the environment is read once per process
    // by design (a test that resets faults should not resurrect the
    // chaos env of a parent test runner).
}

void
armChaos(std::uint64_t seed, std::uint32_t oneIn)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.chaos = oneIn > 0;
    r.chaosSeed = seed;
    r.chaosOneIn = oneIn;
}

std::uint64_t
faultHits(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t
faultsFired(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.fired;
}

} // namespace facile::testing

#else // !FACILE_FAULT_INJECT

// The header provides inline no-ops; this TU is intentionally empty,
// but must not be, for portability of archivers.
namespace facile::testing {
void faultTranslationUnitAnchor();
void faultTranslationUnitAnchor() {}
} // namespace facile::testing

#endif // FACILE_FAULT_INJECT
