/**
 * @file
 * Superoptimizer sketch (the use case motivating Facile's speed, paper
 * sections 1 and 7): a random-search optimizer that explores
 * semantically equivalent instruction sequences and ranks candidates
 * with Facile as the cost model — tens of thousands of cost queries,
 * which is exactly the regime where a fast analytical model matters.
 *
 * The search rewrites a toy kernel computing r = 9*x + y using a menu
 * of equivalent fragments for the multiply (imul; lea-based; shl+add)
 * and measures how Facile steers the search toward the cheapest
 * combination, additionally using the interpretability API to report
 * *why* the winner wins.
 */
#include <chrono>
#include <cstdio>

#include "bb/basic_block.h"
#include "facile/component.h"
#include "facile/predictor.h"
#include "isa/builder.h"
#include "support/rng.h"

using namespace facile;
using namespace facile::isa;

namespace {

/** Equivalent implementations of t = 9*x (x in rax, t in rbx). */
std::vector<std::vector<Inst>>
mulByNineVariants()
{
    return {
        // imul: one µop but 3-cycle latency.
        {make(Mnemonic::IMUL, {R(RBX), R(RAX), I(9, 1)})},
        // lea [rax + rax*8]: one 1-cycle µop.
        {make(Mnemonic::LEA, {R(RBX), M(memIdx(RAX, RAX, 8))})},
        // shl+add: two µops, 2-cycle chain.
        {make(Mnemonic::MOV, {R(RBX), R(RAX)}),
         make(Mnemonic::SHL, {R(RBX), I(3, 1)}),
         make(Mnemonic::ADD, {R(RBX), R(RAX)})},
    };
}

/** Equivalent implementations of the final add r = t + y (y in rcx). */
std::vector<std::vector<Inst>>
addVariants()
{
    return {
        {make(Mnemonic::ADD, {R(RBX), R(RCX)})},
        {make(Mnemonic::LEA, {R(RBX), M(memIdx(RBX, RCX, 1))})},
    };
}

} // namespace

int
main()
{
    Rng rng(42);
    auto muls = mulByNineVariants();
    auto adds = addVariants();

    double bestCost = 1e9;
    std::vector<Inst> bestSeq;
    int evaluations = 0;

    // The search loop drives the cheap call path: caller-owned scratch,
    // no interpretability payload — tens of thousands of bound-only
    // queries is exactly the regime the staged pipeline serves.
    model::PredictScratch scratch;

    auto t0 = std::chrono::steady_clock::now();
    for (int iter = 0; iter < 20000; ++iter) {
        // Random candidate: pick fragments and optionally pad with a
        // register-renaming mov (which move elimination makes free on
        // some µarches but not others).
        std::vector<Inst> candidate = rng.pick(muls);
        if (rng.chance(0.3))
            candidate.push_back(make(Mnemonic::MOV, {R(RDX), R(RBX)}));
        for (const auto &i : rng.pick(adds))
            candidate.push_back(i);

        bb::BasicBlock blk = bb::analyze(candidate, uarch::UArch::SKL);
        model::Prediction p =
            model::predict(blk, false, {}, scratch, model::Payload::None);
        ++evaluations;

        // Cost: predicted steady-state cycles; break ties toward fewer
        // bytes (smaller code).
        double cost = p.throughput + blk.lengthBytes() * 1e-4;
        if (cost < bestCost) {
            bestCost = cost;
            bestSeq = candidate;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::printf("Superoptimizing r = 9*x + y on Skylake\n");
    std::printf("%d candidate evaluations in %.1f ms (%.1f us per Facile "
                "query)\n\n",
                evaluations, ms, 1000.0 * ms / evaluations);

    std::printf("Best sequence (predicted %.2f cycles/iteration):\n",
                bestCost);
    for (const auto &inst : bestSeq)
        std::printf("  %s\n", toString(inst).c_str());

    // Only the winner earns the full explanation: predict cheap, then
    // fill the interpretability payload on demand with explain() — the
    // payload is byte-identical to an eager Payload::Full call.
    bb::BasicBlock blk = bb::analyze(bestSeq, uarch::UArch::SKL);
    model::Prediction p =
        model::predict(blk, false, {}, scratch, model::Payload::None);
    model::explain(blk, {}, scratch, p);
    std::printf("Bottleneck: %s",
                model::componentName(p.primaryBottleneck).data());
    if (p.primaryBottleneck == model::Component::Ports &&
        p.contendedPorts)
        std::printf(" (contention on %s)",
                    uarch::portMaskName(p.contendedPorts).c_str());
    else if (p.primaryBottleneck == model::Component::Precedence &&
             !p.criticalChain.empty())
        std::printf(" (dependence chain through %zu instruction%s)",
                    p.criticalChain.size(),
                    p.criticalChain.size() == 1 ? "" : "s");
    std::printf("\n");
    return 0;
}
