/**
 * @file
 * Quickstart: build a basic block, predict its throughput with Facile
 * on Skylake, and print the per-component bounds and the bottleneck.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cmath>
#include <cstdio>

#include "bb/basic_block.h"
#include "facile/predictor.h"
#include "isa/builder.h"

using namespace facile;
using namespace facile::isa;

int
main()
{
    // A small loop body: load, multiply-accumulate, store, count.
    std::vector<Inst> body = {
        make(Mnemonic::MOV, {R(RAX), M(memIdx(RSI, RCX, 8))}),
        make(Mnemonic::IMUL, {R(RAX), R(RDX)}),
        make(Mnemonic::ADD, {R(RBX), R(RAX)}),
        make(Mnemonic::MOV, {M(memIdx(RDI, RCX, 8)), R(RBX)}),
        make(Mnemonic::INC, {R(RCX)}),
        make(Mnemonic::CMP, {R(RCX), R(R8)}),
        backEdge(Cond::NE),
    };

    bb::BasicBlock blk = bb::analyze(body, uarch::UArch::SKL);

    std::printf("Block (%d bytes, %zu instructions):\n", blk.lengthBytes(),
                blk.insts.size());
    for (const auto &ai : blk.insts)
        std::printf("  %2d: %s%s\n", ai.start,
                    toString(ai.dec->inst).c_str(),
                    ai.fusedWithPrev ? "   ; macro-fused with previous"
                                     : "");

    for (bool loop : {true, false}) {
        model::Prediction p = model::predict(blk, loop);
        std::printf("\n%s prediction: %.2f cycles/iteration\n",
                    loop ? "TPL (loop)" : "TPU (unrolled)", p.throughput);
        for (int c = 0; c < model::kNumComponents; ++c) {
            double v = p.componentValue[c];
            if (std::isnan(v))
                continue;
            std::printf("  %-12s %6.2f%s\n",
                        model::componentName(
                            static_cast<model::Component>(c))
                            .data(),
                        v, v >= p.throughput - 1e-9 ? "  <-- bottleneck"
                                                    : "");
        }
    }
    return 0;
}
