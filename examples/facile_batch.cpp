/**
 * @file
 * Offline corpus batch pipeline: run an entire binary corpus
 * (src/corpus/corpus.h) through the batched PredictionEngine and emit
 * per-block predictions plus Table-2-style accuracy statistics for
 * every (arch, notion) group that carries measured ground truth.
 *
 * Usage:
 *   facile_batch CORPUS [--threads N] [--csv FILE] [--explain]
 *                [--server unix:PATH | --server HOST:PORT]
 *                [--snapshot-load FILE] [--snapshot-save FILE]
 *   facile_batch --make-corpus FILE [--arch ABBR] [--per-category N]
 *                [--seed S] [--unroll] [--no-measured]
 *
 * Predict mode streams the corpus into one engine batch, prints
 * throughput (blocks/s) and the accuracy table, and optionally writes
 * a CSV (index, arch, loop, bytes, predicted, measured). With
 * --snapshot-load the process starts from a warm-start snapshot
 * (src/analysis/snapshot.h) instead of paying the instruction-
 * interning cold path; --snapshot-save persists the arenas (and the
 * engine's prediction cache) after the run.
 *
 * With --server the predictions come from a running facile_server via
 * the pipelined client (bit-identical to the local engine), so a
 * corpus can be scored against a long-lived warm server instead of a
 * cold in-process engine. Server rejections surface as typed
 * server::ProtocolError — OVERLOADED (the server shed load) is
 * reported distinctly from transport failures. Incompatible with the
 * local-engine flags (--threads, --snapshot-*).
 *
 * Make mode generates a corpus from the BHive-substitute suite with
 * simulator-measured ground truth (the expensive part; --no-measured
 * skips it), so the full pipeline is reproducible without external
 * data.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <optional>

#include "analysis/snapshot.h"
#include "corpus/corpus.h"
#include "engine/engine.h"
#include "eval/harness.h"
#include "server/client.h"

using namespace facile;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s CORPUS [--threads N] [--csv FILE] [--explain]\n"
        "       %*s        [--server unix:PATH | --server HOST:PORT]\n"
        "       %*s        [--snapshot-load FILE] [--snapshot-save FILE]\n"
        "       %s --make-corpus FILE [--arch ABBR] [--per-category N]\n"
        "       %*s        [--seed S] [--unroll] [--no-measured]\n",
        argv0, static_cast<int>(std::strlen(argv0)), "",
        static_cast<int>(std::strlen(argv0)), "", argv0,
        static_cast<int>(std::strlen(argv0)), "");
    return 2;
}

/** Group key for the accuracy table: one row per (arch, notion). */
struct GroupKey
{
    uarch::UArch arch;
    bool loop;

    bool
    operator<(const GroupKey &o) const
    {
        return arch != o.arch ? arch < o.arch : loop < o.loop;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string corpusPath, makePath, csvPath, snapLoad, snapSave;
    std::string serverSpec;
    uarch::UArch arch = uarch::UArch::SKL;
    int threads = 0;
    int perCategory = 10;
    std::uint64_t seed = 20231020;
    bool loop = true;
    bool measured = true;
    bool explain = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (arg == "--make-corpus") {
            if (!(v = next()))
                return usage(argv[0]);
            makePath = v;
        } else if (arg == "--arch") {
            if (!(v = next()))
                return usage(argv[0]);
            try {
                arch = uarch::fromAbbrev(v);
            } catch (const std::exception &) {
                std::fprintf(stderr, "unknown arch: %s\n", v);
                return 2;
            }
        } else if (arg == "--per-category") {
            if (!(v = next()))
                return usage(argv[0]);
            perCategory = std::atoi(v);
        } else if (arg == "--seed") {
            if (!(v = next()))
                return usage(argv[0]);
            seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--threads") {
            if (!(v = next()))
                return usage(argv[0]);
            threads = std::atoi(v);
        } else if (arg == "--csv") {
            if (!(v = next()))
                return usage(argv[0]);
            csvPath = v;
        } else if (arg == "--server") {
            if (!(v = next()))
                return usage(argv[0]);
            serverSpec = v;
        } else if (arg == "--snapshot-load") {
            if (!(v = next()))
                return usage(argv[0]);
            snapLoad = v;
        } else if (arg == "--snapshot-save") {
            if (!(v = next()))
                return usage(argv[0]);
            snapSave = v;
        } else if (arg == "--unroll") {
            loop = false;
        } else if (arg == "--no-measured") {
            measured = false;
        } else if (arg == "--explain") {
            explain = true;
        } else if (!arg.empty() && arg[0] != '-' && corpusPath.empty()) {
            corpusPath = arg;
        } else {
            return usage(argv[0]);
        }
    }

    // ---- make mode ---------------------------------------------------------
    if (!makePath.empty()) {
        const auto suite = bhive::generateSuite(seed, perCategory);
        std::vector<double> truth;
        if (measured) {
            std::fprintf(stderr,
                         "[make] measuring ground truth for %s (%zu "
                         "blocks)...\n",
                         uarch::config(arch).abbrev, suite.size());
            const eval::ArchSuite prepared = eval::prepare(arch, suite);
            truth = loop ? prepared.measuredL : prepared.measuredU;
        }
        try {
            corpus::Writer w(makePath);
            for (std::size_t i = 0; i < suite.size(); ++i) {
                corpus::Entry e;
                e.arch = arch;
                e.loop = loop;
                e.bytes = loop ? suite[i].bytesL : suite[i].bytesU;
                if (measured) {
                    e.hasMeasured = true;
                    e.measured = truth[i];
                }
                w.append(e);
            }
            w.close();
            std::printf("wrote %s: %llu blocks (%s, %s%s)\n",
                        makePath.c_str(),
                        static_cast<unsigned long long>(w.count()),
                        uarch::config(arch).abbrev,
                        loop ? "TPL" : "TPU",
                        measured ? ", measured" : "");
        } catch (const corpus::CorpusError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        return 0;
    }

    // ---- predict mode ------------------------------------------------------
    if (corpusPath.empty())
        return usage(argv[0]);

    if (!serverSpec.empty() &&
        (threads != 0 || !snapLoad.empty() || !snapSave.empty())) {
        std::fprintf(stderr,
                     "--server is incompatible with --threads and "
                     "--snapshot-* (those configure the local engine; "
                     "warm and size the server instead)\n");
        return 2;
    }

    // Remote mode: predictions come from a running facile_server over
    // the pipelined client — bit-identical to the local engine.
    std::optional<server::Client> cli;
    if (!serverSpec.empty()) {
        try {
            if (serverSpec.rfind("unix:", 0) == 0) {
                cli.emplace(
                    server::Client::connectUnix(serverSpec.substr(5)));
            } else {
                const auto colon = serverSpec.rfind(':');
                if (colon == std::string::npos)
                    return usage(argv[0]);
                cli.emplace(server::Client::connectTcp(
                    serverSpec.substr(0, colon),
                    std::atoi(serverSpec.c_str() + colon + 1)));
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot connect to %s: %s\n",
                         serverSpec.c_str(), e.what());
            return 1;
        }
    }

    std::optional<engine::PredictionEngine> eng;
    if (!cli) {
        engine::PredictionEngine::Options eopts;
        eopts.numThreads = threads;
        eng.emplace(eopts);
    }

    if (!snapLoad.empty()) {
        try {
            const analysis::SnapshotStats st =
                analysis::loadSnapshot(snapLoad, {&*eng});
            std::fprintf(stderr,
                         "[snapshot] loaded %s: %zu records (%zu new), "
                         "%zu fused pairs, %zu cached predictions\n",
                         snapLoad.c_str(), st.records, st.newRecords,
                         st.fusedPairs, st.predictions);
        } catch (const analysis::SnapshotError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    // Stream the corpus in chunks — memory use is bounded by the
    // chunk size, not the corpus, as the format promises. Per-group
    // accuracy inputs (doubles) are the only whole-run accumulation.
    constexpr std::size_t kChunk = 8192;
    std::map<GroupKey, std::pair<std::vector<double>,
                                 std::vector<double>>>
        groups; // (measured, predicted)
    std::FILE *csv = nullptr;
    if (!csvPath.empty()) {
        csv = std::fopen(csvPath.c_str(), "w");
        if (!csv) {
            std::fprintf(stderr, "cannot write %s\n", csvPath.c_str());
            return 1;
        }
        std::fprintf(csv, "index,arch,loop,bytes,predicted,measured\n");
    }

    std::size_t total = 0;
    double ms = 0.0;
    engine::BatchStats bs;
    try {
        corpus::Reader reader(corpusPath);
        std::vector<corpus::Entry> entries;
        std::vector<engine::Request> batch;
        std::vector<model::Prediction> preds;
        for (;;) {
            entries.clear();
            corpus::Entry e;
            while (entries.size() < kChunk && reader.next(e))
                entries.push_back(std::move(e));
            if (entries.empty())
                break;

            batch.clear();
            batch.reserve(entries.size());
            for (const corpus::Entry &ent : entries) {
                engine::Request r;
                r.bytes = ent.bytes;
                r.arch = ent.arch;
                r.loop = ent.loop;
                r.payload = explain ? model::Payload::Full
                                    : model::Payload::None;
                batch.push_back(std::move(r));
            }
            const auto t0 = std::chrono::steady_clock::now();
            if (cli)
                cli->predictManyInto(batch, preds);
            else
                preds = eng->predictBatch(batch, &bs);
            const auto t1 = std::chrono::steady_clock::now();
            ms += std::chrono::duration<double, std::milli>(t1 - t0)
                      .count();

            for (std::size_t i = 0; i < entries.size(); ++i) {
                const corpus::Entry &ent = entries[i];
                if (csv) {
                    std::fprintf(csv, "%zu,%s,%d,%zu,%.10g,",
                                 total + i,
                                 uarch::config(ent.arch).abbrev,
                                 ent.loop ? 1 : 0, ent.bytes.size(),
                                 preds[i].throughput);
                    if (ent.hasMeasured)
                        std::fprintf(csv, "%.10g", ent.measured);
                    std::fprintf(csv, "\n");
                }
                if (ent.hasMeasured) {
                    auto &[m, p] = groups[{ent.arch, ent.loop}];
                    m.push_back(ent.measured);
                    p.push_back(preds[i].throughput);
                }
            }
            total += entries.size();
        }
    } catch (const server::ProtocolError &e) {
        if (csv)
            std::fclose(csv);
        std::fprintf(stderr, "%s%s\n", e.what(),
                     e.status() == server::Status::Overloaded
                         ? " (server shed load; retry, or raise its "
                           "--max-pending / --max-inflight)"
                         : "");
        return 1;
    } catch (const corpus::CorpusError &e) {
        if (csv)
            std::fclose(csv);
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        // Transport faults from --server mode (connection loss, short
        // writes) land here, distinct from the typed rejections above.
        if (csv)
            std::fclose(csv);
        std::fprintf(stderr, "transport: %s\n", e.what());
        return 1;
    }
    if (csv) {
        std::fclose(csv);
        std::printf("wrote %s\n", csvPath.c_str());
    }
    if (total == 0) {
        std::fprintf(stderr, "%s: empty corpus\n", corpusPath.c_str());
        return 1;
    }

    if (cli) {
        std::printf("%s: %zu blocks in %.1f ms (%.0f blocks/s via "
                    "server %s)\n",
                    corpusPath.c_str(), total, ms,
                    1000.0 * static_cast<double>(total) / ms,
                    serverSpec.c_str());
    } else {
        std::printf("%s: %zu blocks in %.1f ms (%.0f blocks/s, %d "
                    "threads)\n",
                    corpusPath.c_str(), total, ms,
                    1000.0 * static_cast<double>(total) / ms,
                    eng->numThreads());
        std::printf("engine: %zu analyzed, %zu analysis-cache hits, "
                    "%zu prediction-cache hits\n",
                    bs.analyzed, bs.analysisCacheHits,
                    bs.predictionCacheHits);
    }
    if (!groups.empty()) {
        std::printf("\n%-5s %-7s %8s %10s %10s %8s\n", "uArch",
                    "Notion", "Blocks", "MAPE", "Kendall", "Skipped");
        for (const auto &[key, mp] : groups) {
            const eval::Accuracy acc = eval::score(mp.first, mp.second);
            std::printf("%-5s %-7s %8zu %9.2f%% %10.4f %8zu\n",
                        uarch::config(key.arch).abbrev,
                        key.loop ? "TPL" : "TPU", mp.first.size(),
                        acc.mape * 100.0, acc.kendall, acc.mapeSkipped);
        }
    } else {
        std::printf("(no measured ground truth in the corpus — "
                    "accuracy table skipped)\n");
    }

    if (!snapSave.empty()) {
        try {
            const analysis::SnapshotStats st =
                analysis::saveSnapshot(snapSave, {&*eng});
            std::printf("[snapshot] saved %s: %zu records, %zu fused "
                        "pairs, %zu cached predictions (%zu bytes)\n",
                        snapSave.c_str(), st.records, st.fusedPairs,
                        st.predictions, st.bytes);
        } catch (const analysis::SnapshotError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }
    return 0;
}
