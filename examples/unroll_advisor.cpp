/**
 * @file
 * Loop-unrolling advisor: uses the TPL/TPU distinction (paper section
 * 3.1) the way a compiler would. For each unroll factor, the loop body
 * is replicated (with rotated accumulator registers to relax the
 * dependence chain) and Facile's TPL prediction of the unrolled loop
 * gives cycles per original iteration; the advisor reports the factor
 * where the bottleneck flips from Precedence to a throughput resource
 * and further unrolling stops paying.
 */
#include <cstdio>
#include <vector>

#include "bb/basic_block.h"
#include "facile/component.h"
#include "facile/predictor.h"
#include "isa/builder.h"

using namespace facile;
using namespace facile::isa;

namespace {

/** One reduction step: acc += a[i] * b[i], with a chosen accumulator. */
std::vector<Inst>
reductionStep(int accumulator, int offset)
{
    return {
        make(Mnemonic::MOVSD, {R(xmm(8)), M(mem(RSI, offset * 8, 8))}),
        make(Mnemonic::MOVSD, {R(xmm(9)), M(mem(RDI, offset * 8, 8))}),
        make(Mnemonic::VFMADD231SD,
             {R(xmm(accumulator)), R(xmm(8)), R(xmm(9))}),
    };
}

} // namespace

int
main()
{
    std::printf("Unroll advisor: sum += a[i]*b[i] on Skylake (TPL)\n\n");
    std::printf("%-8s %14s %16s %s\n", "unroll", "cyc/loop-iter",
                "cyc/element", "bottleneck");

    // One scratch for the whole advisor run: buffers stay warm across
    // the unroll candidates (one scratch per thread, not per call).
    model::PredictScratch scratch;

    double bestPerElement = 1e9;
    int bestFactor = 1;
    for (int unroll : {1, 2, 4, 8}) {
        std::vector<Inst> body;
        for (int k = 0; k < unroll; ++k) {
            // Rotate accumulators so independent chains can overlap.
            auto step = reductionStep(k % 4, k);
            body.insert(body.end(), step.begin(), step.end());
        }
        body.push_back(make(Mnemonic::ADD, {R(RSI), I(unroll * 8, 1)}));
        body.push_back(make(Mnemonic::ADD, {R(RDI), I(unroll * 8, 1)}));
        body.push_back(make(Mnemonic::DEC, {R(RCX)}));
        body.push_back(backEdge(Cond::NE));

        bb::BasicBlock blk = bb::analyze(body, uarch::UArch::SKL);
        // The cheap call path: an advisor loop only needs the bound
        // and the bottleneck classification, not the interpretability
        // payload, so it asks for Payload::None explicitly.
        model::Prediction p =
            model::predict(blk, true, {}, scratch, model::Payload::None);
        double perElement = p.throughput / unroll;

        std::printf("%-8d %14.2f %16.3f %s\n", unroll, p.throughput,
                    perElement,
                    model::componentName(p.primaryBottleneck).data());

        if (perElement < bestPerElement - 1e-9) {
            bestPerElement = perElement;
            bestFactor = unroll;
        }
    }

    std::printf("\nRecommended unroll factor: %d (%.3f cycles/element)\n",
                bestFactor, bestPerElement);
    std::printf("Rationale: unrolling pays until the FMA dependence chain "
                "(Precedence) stops being the bottleneck; past that point "
                "the loop is bound by throughput resources and further "
                "unrolling only grows the code.\n");
    return 0;
}
