/**
 * @file
 * Command-line front end — the equivalent of the original facile.py.
 *
 * Usage:
 *   facile_tool [-arch SKL] [-loop|-unroll] [-hex] [file]
 *
 * Reads a basic block as Intel-syntax assembly text (default) or as hex
 * machine code (-hex) from the given file or stdin, and prints the
 * throughput prediction with the full interpretability payload.
 *
 * Example:
 *   echo 'add rax, rbx
 *         imul rcx, rax
 *         dec rdi
 *         jne -2' | ./build/examples/facile_tool -arch RKL -loop
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bb/basic_block.h"
#include "facile/predictor.h"
#include "isa/asm_parser.h"
#include "isa/encoder.h"

using namespace facile;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: facile_tool [-arch ABBR] [-loop|-unroll] [-hex] "
                 "[file]\n"
                 "  -arch ABBR   microarchitecture (SNB IVB HSW BDW SKL "
                 "CLX ICL TGL RKL; default SKL)\n"
                 "  -loop        TPL notion (default if the block ends in "
                 "a branch)\n"
                 "  -unroll      TPU notion (default otherwise)\n"
                 "  -hex         input is hex machine code, not assembly\n");
}

} // namespace

int
main(int argc, char **argv)
{
    uarch::UArch arch = uarch::UArch::SKL;
    int notion = -1; // -1 auto, 0 unroll, 1 loop
    bool hex = false;
    const char *path = nullptr;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "-arch") && i + 1 < argc) {
            try {
                arch = uarch::fromAbbrev(argv[++i]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 1;
            }
        } else if (!std::strcmp(argv[i], "-loop")) {
            notion = 1;
        } else if (!std::strcmp(argv[i], "-unroll")) {
            notion = 0;
        } else if (!std::strcmp(argv[i], "-hex")) {
            hex = true;
        } else if (!std::strcmp(argv[i], "-h") ||
                   !std::strcmp(argv[i], "--help")) {
            usage();
            return 0;
        } else {
            path = argv[i];
        }
    }

    std::string input;
    if (path) {
        std::ifstream f(path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", path);
            return 1;
        }
        std::stringstream ss;
        ss << f.rdbuf();
        input = ss.str();
    } else {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        input = ss.str();
    }

    bb::BasicBlock blk;
    try {
        std::vector<std::uint8_t> bytes =
            hex ? isa::parseHex(input)
                : isa::encodeBlock(isa::parseListing(input));
        blk = bb::analyze(bytes, arch);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    if (blk.insts.empty()) {
        std::fprintf(stderr, "error: empty basic block\n");
        return 1;
    }

    const bool loop = notion == -1 ? blk.endsInBranch() : notion == 1;
    model::Prediction p = model::predict(blk, loop);

    std::printf("Microarchitecture: %s\n", uarch::config(arch).name);
    std::printf("Throughput notion: %s\n", loop ? "TPL (loop)"
                                                : "TPU (unrolled)");
    std::printf("Block: %d bytes, %zu instructions, %d fused-domain "
                "uops\n\n",
                blk.lengthBytes(), blk.insts.size(), blk.fusedUops());
    for (const auto &ai : blk.insts)
        std::printf("  %3d: %-40s %s\n", ai.start,
                    isa::toString(ai.dec->inst).c_str(),
                    ai.fusedWithPrev ? "; macro-fused" : "");

    std::printf("\nPredicted throughput: %.2f cycles/iteration\n\n",
                p.throughput);
    std::printf("Component bounds:\n");
    for (int c = 0; c < model::kNumComponents; ++c) {
        double v = p.componentValue[c];
        if (std::isnan(v))
            continue;
        std::printf("  %-12s %6.2f%s\n",
                    model::componentName(static_cast<model::Component>(c))
                        .data(),
                    v,
                    v >= p.throughput - 1e-9 ? "  <-- bottleneck" : "");
    }

    if (!p.criticalChain.empty() &&
        p.primaryBottleneck == model::Component::Precedence) {
        std::printf("\nCritical dependence chain:\n");
        for (int idx : p.criticalChain)
            std::printf("  %s\n",
                        isa::toString(
                            blk.insts[static_cast<std::size_t>(idx)]
                                .dec->inst)
                            .c_str());
    }
    if (p.primaryBottleneck == model::Component::Ports) {
        std::printf("\nContended ports: %s (%zu instructions)\n",
                    uarch::portMaskName(p.contendedPorts).c_str(),
                    p.contendingInsts.size());
    }
    return 0;
}
