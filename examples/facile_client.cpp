/**
 * @file
 * Load generator and smoke client for the prediction server.
 *
 * Usage:
 *   facile_client [--tcp HOST:PORT | --unix PATH] [--clients N]
 *                 [--passes N] [--arch ABBR] [--loop] [--stats]
 *
 * Generates the deterministic BHive-substitute suite, streams it at
 * the server from N concurrent pipelined connections, and reports
 * blocks/sec plus round-trip latency percentiles. With --stats it
 * prints the server's counters and exits.
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bhive/generator.h"
#include "server/client.h"
#include "support/stats.h"
#include "uarch/config.h"

using namespace facile;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--tcp HOST:PORT | --unix PATH] "
                 "[--clients N] [--passes N] [--arch ABBR] [--loop] "
                 "[--stats]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unixPath = "/tmp/facile.sock";
    std::string tcpHost;
    int tcpPort = -1;
    int nClients = 4;
    int passes = 10;
    uarch::UArch arch = uarch::UArch::SKL;
    bool loop = false;
    bool statsOnly = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--tcp") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            std::string hp = v;
            auto colon = hp.rfind(':');
            if (colon == std::string::npos)
                return usage(argv[0]);
            tcpHost = hp.substr(0, colon);
            tcpPort = std::atoi(hp.c_str() + colon + 1);
            unixPath.clear();
        } else if (arg == "--unix") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            unixPath = v;
        } else if (arg == "--clients") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            nClients = std::atoi(v);
        } else if (arg == "--passes") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            passes = std::atoi(v);
        } else if (arg == "--arch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            try {
                arch = uarch::fromAbbrev(v);
            } catch (const std::exception &) {
                std::fprintf(stderr, "unknown arch: %s\n", v);
                return 2;
            }
        } else if (arg == "--loop") {
            loop = true;
        } else if (arg == "--stats") {
            statsOnly = true;
        } else {
            return usage(argv[0]);
        }
    }

    auto connect = [&]() {
        return tcpHost.empty()
                   ? server::Client::connectUnix(unixPath)
                   : server::Client::connectTcp(tcpHost, tcpPort);
    };

    try {
        if (statsOnly) {
            auto cl = connect();
            server::ServerStats s = cl.stats();
            std::printf(
                "uptime %.1f s, %llu requests, %llu predictions, "
                "%llu batches (max %llu), %llu prediction-cache hits, "
                "%llu analysis-cache hits, %llu analyzed, "
                "%llu connections (%llu open)\n",
                static_cast<double>(s.uptimeMs) / 1000.0,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.predictions),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.maxBatch),
                static_cast<unsigned long long>(s.predictionCacheHits),
                static_cast<unsigned long long>(s.analysisCacheHits),
                static_cast<unsigned long long>(s.analyzed),
                static_cast<unsigned long long>(s.connectionsAccepted),
                static_cast<unsigned long long>(s.connectionsOpen));
            std::printf(
                "shed: %llu overloaded-queue, %llu overloaded-conn, "
                "%llu read timeouts, %llu byte-quota closes, "
                "%llu refused at accept\n",
                static_cast<unsigned long long>(s.overloadedQueue),
                static_cast<unsigned long long>(s.overloadedConn),
                static_cast<unsigned long long>(s.readTimeouts),
                static_cast<unsigned long long>(s.quotaClosed),
                static_cast<unsigned long long>(s.connectionsShed));
            return 0;
        }

        const auto &suite = bhive::defaultSuite();
        std::vector<engine::Request> batch;
        batch.reserve(suite.size());
        for (const auto &b : suite)
            batch.push_back({loop ? b.bytesL : b.bytesU, arch, loop, {}});

        std::printf("load: %d client(s) x %d pass(es) x %zu blocks "
                    "(%s, %s)\n",
                    nClients, passes, batch.size(),
                    loop ? "TPL" : "TPU", uarch::config(arch).abbrev);

        // Throughput: concurrent pipelined clients. Exceptions must
        // not escape a std::thread (std::terminate): report and fail.
        std::atomic<int> workerErrors{0};
        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> workers;
        for (int c = 0; c < nClients; ++c)
            workers.emplace_back([&, c] {
                try {
                    auto cl = connect();
                    std::vector<model::Prediction> res;
                    for (int p = 0; p < passes; ++p)
                        cl.predictManyInto(batch, res);
                } catch (const server::ProtocolError &e) {
                    // Typed: distinguish the server shedding load
                    // (retryable — this tool reports it as a sizing
                    // hint instead) from a broken peer.
                    std::fprintf(
                        stderr, "client %d: %s%s\n", c, e.what(),
                        e.status() == server::Status::Overloaded
                            ? " (server shed load; lower --clients or "
                              "raise the server's limits)"
                            : "");
                    ++workerErrors;
                } catch (const std::exception &e) {
                    std::fprintf(stderr, "client %d: transport: %s\n",
                                 c, e.what());
                    ++workerErrors;
                }
            });
        for (auto &w : workers)
            w.join();
        if (workerErrors.load() > 0)
            return 1;
        auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        const double total = static_cast<double>(batch.size()) *
                             nClients * passes;
        std::printf("throughput: %.0f blocks/s (%.3f ms per %zu-block "
                    "pass)\n",
                    1000.0 * total / ms,
                    ms / (nClients * passes), batch.size());

        // Latency: synchronous round trips on one connection.
        auto cl = connect();
        std::vector<double> us;
        const int probes = 1000;
        us.reserve(probes);
        for (int i = 0; i < probes; ++i) {
            const auto &r =
                batch[static_cast<std::size_t>(i) % batch.size()];
            auto s0 = std::chrono::steady_clock::now();
            cl.predict(r.bytes, r.arch, r.loop, r.config);
            auto s1 = std::chrono::steady_clock::now();
            us.push_back(
                std::chrono::duration<double, std::micro>(s1 - s0)
                    .count());
        }
        std::printf("latency: p50 %.1f us, p99 %.1f us (includes the "
                    "server's admission window)\n",
                    percentile(us, 50), percentile(us, 99));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
