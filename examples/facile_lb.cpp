/**
 * @file
 * Standalone consistent-hash router (cluster::Router) in front of N
 * facile_server backends.
 *
 * Usage:
 *   facile_lb --backend SPEC [--backend SPEC ...]
 *             [--tcp PORT] [--unix PATH]
 *             [--health-interval-ms N] [--health-miss-limit N]
 *             [--reconnect-backoff-ms N]
 *
 * SPEC is unix:PATH or HOST:PORT (dotted-quad host). With no listener
 * flags it serves on --unix /tmp/facile-lb.sock. Clients speak the
 * ordinary prediction-server wire protocol to the router; every
 * PREDICT is sharded to the rendezvous-hash pick of
 * (arch, xxh64(block bytes)), so each backend's caches stay hot for
 * its shard of the instruction universe. Dead backends are failed
 * over and re-dialed with backoff — see src/cluster/router.h for the
 * full semantics.
 *
 * SIGINT/SIGTERM stop the router and print its forwarding counters.
 */
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <semaphore.h>
#include <string>
#include <vector>

#include "cluster/router.h"

using namespace facile;

namespace {

/** async-signal-safe shutdown latch. */
sem_t g_stopSem;
std::atomic<bool> g_stopRequested{false};

void
onSignal(int)
{
    g_stopRequested.store(true);
    sem_post(&g_stopSem);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --backend SPEC [--backend SPEC ...] "
                 "[--tcp PORT] [--unix PATH]\n"
                 "       [--health-interval-ms N] [--health-miss-limit N] "
                 "[--reconnect-backoff-ms N]\n"
                 "       SPEC = unix:PATH | HOST:PORT\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cluster::RouterOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--backend") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            try {
                opts.backends.push_back(cluster::parseEndpoint(v));
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return usage(argv[0]);
            }
        } else if (arg == "--tcp") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.tcpPort = std::atoi(v);
        } else if (arg == "--unix") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.unixPath = v;
        } else if (arg == "--health-interval-ms") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.healthIntervalMs = std::atoi(v);
        } else if (arg == "--health-miss-limit") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.healthMissLimit = std::atoi(v);
        } else if (arg == "--reconnect-backoff-ms") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.reconnectBackoffMs = std::atoi(v);
        } else {
            return usage(argv[0]);
        }
    }
    if (opts.backends.empty())
        return usage(argv[0]);
    if (opts.unixPath.empty() && opts.tcpPort < 0)
        opts.unixPath = "/tmp/facile-lb.sock";

    cluster::Router router(opts);
    try {
        router.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "failed to start: %s\n", e.what());
        return 1;
    }
    if (!opts.unixPath.empty())
        std::printf("routing on unix socket %s\n", opts.unixPath.c_str());
    if (opts.tcpPort >= 0)
        std::printf("routing on %s:%d\n", opts.tcpHost.c_str(),
                    router.tcpPort());
    std::printf("%zu backend(s):\n", opts.backends.size());
    for (const auto &ep : opts.backends)
        std::printf("  %s\n", ep.label().c_str());
    std::fflush(stdout);

    sem_init(&g_stopSem, 0, 0);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stopRequested.load())
        if (sem_wait(&g_stopSem) != 0 && errno != EINTR)
            break;

    const server::ServerStats s = router.stats();
    router.stop();
    std::printf("\nshut down after %.1f s: %llu requests, %llu routed "
                "predicts, %llu failovers, %llu no-backend sheds, "
                "%llu connections\n",
                static_cast<double>(s.uptimeMs) / 1000.0,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.routedPredicts),
                static_cast<unsigned long long>(s.backendFailovers),
                static_cast<unsigned long long>(s.overloadedQueue),
                static_cast<unsigned long long>(s.connectionsAccepted));
    return 0;
}
