/**
 * @file
 * Standalone prediction server: serves the Facile throughput model
 * over TCP and/or Unix-domain sockets until interrupted.
 *
 * Usage:
 *   facile_server [--tcp PORT] [--unix PATH] [--threads N]
 *                 [--io-threads N] [--window-us N] [--max-batch N]
 *                 [--read-timeout-ms N] [--max-connections N]
 *                 [--max-pending N] [--max-inflight N]
 *                 [--snapshot-load FILE] [--snapshot-save FILE]
 *                 [--snapshot-format v1|v2] [--drain-grace-ms N]
 *
 * --threads sizes the engine worker pool; --io-threads the epoll
 * reader loops (1 is right until the reader side itself saturates a
 * core — see ServerOptions::ioThreads).
 *
 * With no listener flags it serves on --unix /tmp/facile.sock.
 *
 * Shutdown (see PredictionServer::drain()): SIGTERM drains first —
 * new connections are refused, new PREDICTs are answered DRAINING,
 * HEALTH flips to Draining so routers move traffic off, and admitted
 * work flushes — then after --drain-grace-ms (default 1000) the
 * server stops and prints the serving counters. SIGINT skips the
 * grace period and stops immediately (a second SIGTERM too).
 *
 * The resource-limit flags override the ServerOptions defaults (see
 * src/server/README.md, "Resource limits & abuse handling"): read
 * deadline per connection (0 disables — not recommended on exposed
 * listeners), connection cap, admission-queue bound, and per-
 * connection in-flight quota. Shedding is explicit: over-quota
 * requests are answered OVERLOADED, and every limit has a counter in
 * the shutdown summary / STATS frame.
 *
 * Warm-start snapshots (src/analysis/snapshot.h): --snapshot-load
 * restores the instruction intern arenas and the engine's prediction
 * cache before the first request, so a restarted server serves warm
 * immediately — falling back through rotated generations when the
 * newest file is torn (e.g. the previous process was SIGKILLed mid-
 * save), and starting cold if none loads. --snapshot-save configures
 * the destination; a save is triggered by SIGUSR1, by the SNAPSHOT
 * admin frame (server::Client::snapshot()), and once more on clean
 * shutdown. Saves are atomic (temp + fsync + rename), so a crash
 * never leaves the destination unloadable. Point both flags at the
 * same file for crash-restart round trips. --snapshot-format picks
 * the image written by saves: v2 (default) is the mmap-native
 * sectioned image restarts bind in O(pages touched); v1 is the
 * legacy streaming format for rollback to older binaries (loads
 * accept both, whatever the flag says).
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore.h>
#include <string>
#include <thread>

#include "analysis/snapshot.h"
#include "server/server.h"

using namespace facile;

namespace {

/** async-signal-safe shutdown latch. */
sem_t g_stopSem;

/** Set by SIGUSR1: the main loop saves a snapshot and keeps serving. */
std::atomic<bool> g_snapshotRequested{false};

/** Set by SIGINT (or a repeated SIGTERM): stop immediately. */
std::atomic<bool> g_stopRequested{false};

/** Set by SIGTERM: drain, then stop after the grace period. */
std::atomic<bool> g_drainRequested{false};

void
onSignal(int)
{
    g_stopRequested.store(true);
    sem_post(&g_stopSem);
}

void
onSigTerm(int)
{
    // Second SIGTERM escalates to an immediate stop.
    if (g_drainRequested.exchange(true))
        g_stopRequested.store(true);
    sem_post(&g_stopSem);
}

void
onSigUsr1(int)
{
    g_snapshotRequested.store(true);
    sem_post(&g_stopSem);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--tcp PORT] [--unix PATH] [--threads N] "
                 "[--io-threads N] [--window-us N] [--max-batch N]\n"
                 "       [--read-timeout-ms N] [--max-connections N] "
                 "[--max-pending N] [--max-inflight N]\n"
                 "       [--snapshot-load FILE] [--snapshot-save FILE] "
                 "[--snapshot-format v1|v2] [--drain-grace-ms N]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerOptions opts;
    int threads = 0;
    int drainGraceMs = 1000;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--tcp") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.tcpPort = std::atoi(v);
        } else if (arg == "--unix") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.unixPath = v;
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            threads = std::atoi(v);
        } else if (arg == "--io-threads") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.ioThreads = std::atoi(v);
        } else if (arg == "--window-us") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.batchWindowUs = std::atoi(v);
        } else if (arg == "--max-batch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.maxBatch = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--read-timeout-ms") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.readTimeoutMs = std::atoi(v);
        } else if (arg == "--max-connections") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.maxConnections = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--max-pending") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.maxPending = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--max-inflight") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.maxInFlightPerConn =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--snapshot-load") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.snapshotLoadPath = v;
        } else if (arg == "--snapshot-save") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.snapshotPath = v;
        } else if (arg == "--snapshot-format") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            if (std::string(v) == "v1")
                opts.snapshotFormat = analysis::SnapshotFormat::V1;
            else if (std::string(v) == "v2")
                opts.snapshotFormat = analysis::SnapshotFormat::V2;
            else
                return usage(argv[0]);
        } else if (arg == "--drain-grace-ms") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            drainGraceMs = std::atoi(v);
        } else {
            return usage(argv[0]);
        }
    }
    if (opts.unixPath.empty() && opts.tcpPort < 0)
        opts.unixPath = "/tmp/facile.sock";

    engine::PredictionEngine::Options eopts;
    eopts.numThreads = threads;
    engine::PredictionEngine eng(eopts);
    opts.engine = &eng;

    // --snapshot-load flows through ServerOptions::snapshotLoadPath:
    // start() walks the rotated generations and falls back to a cold
    // start if none loads, logging either way — a missing or torn
    // snapshot must not keep a replica from coming up.
    server::PredictionServer srv(opts);
    try {
        srv.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "failed to start: %s\n", e.what());
        return 1;
    }
    if (!opts.unixPath.empty())
        std::printf("serving on unix socket %s\n", opts.unixPath.c_str());
    if (opts.tcpPort >= 0)
        std::printf("serving on %s:%d\n", opts.tcpHost.c_str(),
                    srv.tcpPort());
    std::printf("engine: %d worker thread(s), %d io loop(s), admission "
                "window %d us, max batch %zu\n",
                eng.numThreads(), opts.ioThreads, opts.batchWindowUs,
                opts.maxBatch);
    std::printf("limits: read deadline %d ms, %zu connections, "
                "%zu pending, %zu in-flight per connection\n",
                opts.readTimeoutMs, opts.maxConnections, opts.maxPending,
                opts.maxInFlightPerConn);
    std::fflush(stdout);

    sem_init(&g_stopSem, 0, 0);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSigTerm);
    // Installed even without --snapshot-save: the default SIGUSR1
    // disposition is process termination, and a stray ops-script
    // signal must not kill the server. saveSnapshot() reports the
    // missing path.
    std::signal(SIGUSR1, onSigUsr1);
    for (;;) {
        if (sem_wait(&g_stopSem) != 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (g_snapshotRequested.exchange(false)) {
            if (opts.snapshotPath.empty())
                std::printf("SIGUSR1 ignored: no --snapshot-save path "
                            "configured\n");
            else
                std::printf("SIGUSR1: snapshot to %s %s\n",
                            opts.snapshotPath.c_str(),
                            srv.saveSnapshot() ? "saved" : "FAILED");
            std::fflush(stdout);
        }
        if (g_drainRequested.load() && !g_stopRequested.load()) {
            std::printf("SIGTERM: draining (refusing new work, grace "
                        "%d ms; SIGINT or SIGTERM again stops now)\n",
                        drainGraceMs);
            std::fflush(stdout);
            srv.drain();
            // Sleep out the grace in slices so an escalation signal
            // still cuts it short; admitted batches flush meanwhile.
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(drainGraceMs);
            while (std::chrono::steady_clock::now() < until &&
                   !g_stopRequested.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            break;
        }
        // Only an explicit stop request ends the loop: back-to-back
        // SIGUSR1s leave extra semaphore posts behind, and those
        // spurious wake-ups must not read as a shutdown.
        if (g_stopRequested.load())
            break;
    }

    server::ServerStats s = srv.stats();
    if (!opts.snapshotPath.empty())
        std::printf("final snapshot to %s %s\n", opts.snapshotPath.c_str(),
                    srv.saveSnapshot() ? "saved" : "FAILED");
    srv.stop();
    std::printf("\nshut down after %.1f s: %llu requests, "
                "%llu predictions in %llu batches (max %llu), "
                "%llu prediction-cache hits, %llu connections\n",
                static_cast<double>(s.uptimeMs) / 1000.0,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.predictions),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.maxBatch),
                static_cast<unsigned long long>(s.predictionCacheHits),
                static_cast<unsigned long long>(s.connectionsAccepted));
    std::printf("event loop: %llu epoll wakeups, %llu short writes "
                "(EPOLLOUT resumes), %llu ring-full rejections\n",
                static_cast<unsigned long long>(s.epollWakeups),
                static_cast<unsigned long long>(s.shortWrites),
                static_cast<unsigned long long>(s.ringFull));
    if (s.drainSheds > 0 || s.snapshotFallbacks > 0)
        std::printf("resilience: %llu requests answered DRAINING, "
                    "%llu snapshot generation fallbacks at warm start\n",
                    static_cast<unsigned long long>(s.drainSheds),
                    static_cast<unsigned long long>(s.snapshotFallbacks));
    const std::uint64_t shed = s.overloadedQueue + s.overloadedConn +
                               s.readTimeouts + s.quotaClosed +
                               s.connectionsShed;
    if (shed > 0)
        std::printf("shed: %llu overloaded (queue %llu, conn quota "
                    "%llu), %llu read timeouts, %llu byte-quota "
                    "closes, %llu refused at accept\n",
                    static_cast<unsigned long long>(s.overloadedQueue +
                                                    s.overloadedConn),
                    static_cast<unsigned long long>(s.overloadedQueue),
                    static_cast<unsigned long long>(s.overloadedConn),
                    static_cast<unsigned long long>(s.readTimeouts),
                    static_cast<unsigned long long>(s.quotaClosed),
                    static_cast<unsigned long long>(s.connectionsShed));
    return 0;
}
