/**
 * @file
 * Standalone prediction server: serves the Facile throughput model
 * over TCP and/or Unix-domain sockets until interrupted.
 *
 * Usage:
 *   facile_server [--tcp PORT] [--unix PATH] [--threads N]
 *                 [--window-us N] [--max-batch N]
 *
 * With no listener flags it serves on --unix /tmp/facile.sock.
 * SIGINT/SIGTERM shut down cleanly and print the serving counters.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore.h>
#include <string>

#include "server/server.h"

using namespace facile;

namespace {

/** async-signal-safe shutdown latch. */
sem_t g_stopSem;

void
onSignal(int)
{
    sem_post(&g_stopSem);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--tcp PORT] [--unix PATH] [--threads N] "
                 "[--window-us N] [--max-batch N]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerOptions opts;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--tcp") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.tcpPort = std::atoi(v);
        } else if (arg == "--unix") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.unixPath = v;
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            threads = std::atoi(v);
        } else if (arg == "--window-us") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.batchWindowUs = std::atoi(v);
        } else if (arg == "--max-batch") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.maxBatch = static_cast<std::size_t>(std::atoll(v));
        } else {
            return usage(argv[0]);
        }
    }
    if (opts.unixPath.empty() && opts.tcpPort < 0)
        opts.unixPath = "/tmp/facile.sock";

    engine::PredictionEngine::Options eopts;
    eopts.numThreads = threads;
    engine::PredictionEngine eng(eopts);
    opts.engine = &eng;

    server::PredictionServer srv(opts);
    try {
        srv.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "failed to start: %s\n", e.what());
        return 1;
    }
    if (!opts.unixPath.empty())
        std::printf("serving on unix socket %s\n", opts.unixPath.c_str());
    if (opts.tcpPort >= 0)
        std::printf("serving on %s:%d\n", opts.tcpHost.c_str(),
                    srv.tcpPort());
    std::printf("engine: %d worker thread(s), admission window %d us, "
                "max batch %zu\n",
                eng.numThreads(), opts.batchWindowUs, opts.maxBatch);
    std::fflush(stdout);

    sem_init(&g_stopSem, 0, 0);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (sem_wait(&g_stopSem) != 0 && errno == EINTR) {
    }

    server::ServerStats s = srv.stats();
    srv.stop();
    std::printf("\nshut down after %.1f s: %llu requests, "
                "%llu predictions in %llu batches (max %llu), "
                "%llu prediction-cache hits, %llu connections\n",
                static_cast<double>(s.uptimeMs) / 1000.0,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.predictions),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.maxBatch),
                static_cast<unsigned long long>(s.predictionCacheHits),
                static_cast<unsigned long long>(s.connectionsAccepted));
    return 0;
}
