/**
 * @file
 * Interpretability demo (paper sections 4.8, 4.9, 6.4): analyze a
 * numerical kernel across all nine microarchitectures, print the
 * bottleneck, the critical dependence chain or the contended ports,
 * and answer the counterfactual question "how much faster would this
 * block be if component X were infinitely fast?".
 */
#include <cmath>
#include <cstdio>

#include "bb/basic_block.h"
#include "facile/component.h"
#include "facile/predictor.h"
#include "isa/builder.h"

using namespace facile;
using namespace facile::isa;

int
main()
{
    // A dot-product-style kernel: two loads, FMA into an accumulator.
    std::vector<Inst> body = {
        make(Mnemonic::MOVSD, {R(XMM1), M(memIdx(RSI, RCX, 8))}),
        make(Mnemonic::MOVSD, {R(XMM2), M(memIdx(RDI, RCX, 8))}),
        make(Mnemonic::VFMADD231SD, {R(XMM0), R(XMM1), R(XMM2)}),
        make(Mnemonic::INC, {R(RCX)}),
        make(Mnemonic::CMP, {R(RCX), R(R8)}),
        backEdge(Cond::NE),
    };

    std::printf("Kernel: dot-product accumulation (TPL analysis)\n\n");
    std::printf("%-14s %8s %-12s %s\n", "uArch", "cyc/iter", "bottleneck",
                "explanation");

    model::PredictScratch scratch;
    for (uarch::UArch a : uarch::allUArchs()) {
        bb::BasicBlock blk = bb::analyze(body, a);
        // An interpretability report wants the payload: request it
        // explicitly (the full-explain call path).
        model::Prediction p = model::predict(blk, true, {}, scratch,
                                             model::Payload::Full);

        std::string why;
        if (p.primaryBottleneck == model::Component::Precedence &&
            !p.criticalChain.empty()) {
            why = "dependence chain:";
            for (int idx : p.criticalChain)
                why += " [" +
                       toString(blk.insts[static_cast<std::size_t>(idx)]
                                    .dec->inst) +
                       "]";
        } else if (p.primaryBottleneck == model::Component::Ports) {
            why = "contention on " + uarch::portMaskName(p.contendedPorts) +
                  " (" + std::to_string(p.contendingInsts.size()) +
                  " instructions)";
        } else {
            why = "front-end / issue limited";
        }

        std::printf("%-14s %8.2f %-12s %s\n", uarch::config(a).name,
                    p.throughput,
                    model::componentName(p.primaryBottleneck).data(),
                    why.c_str());
    }

    // Counterfactual analysis on Skylake. idealized() only reads the
    // component values, so the cheap bound-only call suffices here —
    // the two call paths of the new API side by side.
    bb::BasicBlock blk = bb::analyze(body, uarch::UArch::SKL);
    model::Prediction p =
        model::predict(blk, true, {}, scratch, model::Payload::None);
    std::printf("\nCounterfactuals on Skylake (baseline %.2f cyc/iter):\n",
                p.throughput);
    for (int c = 0; c < model::kNumComponents; ++c) {
        double v = p.componentValue[c];
        if (std::isnan(v))
            continue;
        model::Component comp = static_cast<model::Component>(c);
        double ideal = p.idealized(comp);
        std::printf("  if %-12s were infinitely fast: %.2f cyc/iter "
                    "(%.2fx speedup)\n",
                    model::componentName(comp).data(), ideal,
                    ideal > 0 ? p.throughput / ideal : 1.0);
    }
    return 0;
}
