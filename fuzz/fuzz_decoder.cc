/**
 * @file
 * Fuzz harness for the decode → analyze path — the first consumer of
 * untrusted block bytes (the server hands PREDICT payloads straight to
 * bb::analyze).
 *
 * Input mapping: byte 0 selects the microarchitecture; the remainder
 * is the block image, truncated to kMaxBlockBytes exactly like the
 * wire protocol bounds it.
 *
 * InternMode::Off keeps every iteration self-contained: the process-
 * wide intern arenas are append-only by design, so fuzzing through
 * them would read as an unbounded leak and slow the run down.
 */
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bb/basic_block.h"
#include "isa/decoder.h"
#include "server/protocol.h"
#include "uarch/config.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace facile;
    if (size == 0)
        return 0;
    const auto &arches = uarch::allUArchs();
    const uarch::UArch arch = arches[data[0] % arches.size()];
    const std::size_t n = std::min(size - 1, server::kMaxBlockBytes);
    std::vector<std::uint8_t> bytes(data + 1, data + 1 + n);
    try {
        bb::BasicBlock blk =
            bb::analyze(std::move(bytes), arch, bb::InternMode::Off);
        // Structural invariants every predictor downstream relies on:
        // annotations present, byte layout contiguous and in bounds.
        int prevEnd = 0;
        for (const auto &ai : blk.insts) {
            if (ai.dec == nullptr || ai.info == nullptr)
                __builtin_trap();
            if (ai.start != prevEnd || ai.end <= ai.start ||
                ai.end > static_cast<int>(n))
                __builtin_trap();
            prevEnd = ai.end;
        }
    } catch (const isa::DecodeError &) {
        // Rejecting garbage is the decoder doing its job.
    }
    return 0;
}
