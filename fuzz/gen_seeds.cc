/**
 * @file
 * Seed-corpus generator: writes one small, *valid* input per format
 * into <outdir>/{decoder,protocol,snapshot,corpus}/ using the repo's
 * own encoders, so the checked-in fuzz/corpus/ set starts every fuzz
 * run (and every replay) deep inside the parsers instead of at "bad
 * magic". Deterministic: same build, same bytes.
 *
 * Usage: fuzz_gen_seeds <outdir>
 */
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/snapshot.h"
#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "corpus/corpus.h"
#include "server/protocol.h"
#include "uarch/config.h"

namespace fs = std::filesystem;
using namespace facile;

namespace {

void
writeSeed(const fs::path &dir, const std::string &name,
          const std::vector<std::uint8_t> &bytes)
{
    fs::create_directories(dir);
    std::ofstream out(dir / name, std::ios::binary);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        throw std::runtime_error("cannot write " +
                                 (dir / name).string());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
        return 2;
    }
    const fs::path out(argv[1]);

    // Real encoded blocks from the BHive-substitute generator: one U
    // and one L variant from a couple of categories.
    const std::vector<bhive::Benchmark> suite =
        bhive::generateSuite(20231020, 1);

    // ---- decoder: [arch byte][block bytes] ---------------------------------
    {
        int i = 0;
        for (const auto &b : suite) {
            if (i >= 4)
                break;
            std::vector<std::uint8_t> seed;
            seed.push_back(static_cast<std::uint8_t>(i % 9));
            seed.insert(seed.end(), b.bytesU.begin(), b.bytesU.end());
            writeSeed(out / "decoder",
                      "block_" + bhive::categoryName(b.category),
                      seed);
            ++i;
        }
        // A single NOP — the smallest decodable block.
        writeSeed(out / "decoder", "nop", {0, 0x90});
    }

    // ---- protocol: request frame streams (mode byte first) -----------------
    {
        const auto &b = suite.front();
        engine::Request req{b.bytesL, uarch::UArch::SKL, true, {},
                            model::Payload::None};
        std::vector<std::uint8_t> stream;
        stream.push_back(3); // delivery mode: all at once
        server::appendPredictRequest(stream, 1, req);
        server::appendControlRequest(stream, 2, server::Op::Stats);
        server::appendControlRequest(stream, 3, server::Op::Ping);
        writeSeed(out / "protocol", "predict_stats_ping", stream);

        std::vector<std::uint8_t> tiny;
        tiny.push_back(0); // delivery mode: byte at a time
        server::appendControlRequest(tiny, 7, server::Op::Snapshot);
        writeSeed(out / "protocol", "snapshot_bytewise", tiny);
    }

    // ---- snapshot: real saved images, both formats -------------------------
    // The same seeds feed the snaptool harness (model parse + rebuild).
    {
        // Populate the intern arenas so the snapshot has sections.
        for (const auto &b : suite) {
            bb::analyze(b.bytesU, uarch::UArch::SKL);
            bb::analyze(b.bytesL, uarch::UArch::HSW);
        }
        const fs::path tmp = out / "snapshot.tmp";
        auto save = [&](analysis::SnapshotFormat fmt) {
            analysis::saveSnapshot(tmp.string(), {.format = fmt});
            std::ifstream in(tmp, std::ios::binary);
            std::vector<std::uint8_t> img(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            return img;
        };
        const std::vector<std::uint8_t> v1 =
            save(analysis::SnapshotFormat::V1);
        const std::vector<std::uint8_t> v2 =
            save(analysis::SnapshotFormat::V2);
        fs::remove(tmp);
        fs::remove(tmp.string() + ".g1"); // second save rotated the first
        writeSeed(out / "snapshot", "two_arch_image", v1);
        writeSeed(out / "snapshot", "two_arch_image_v2", v2);
        writeSeed(out / "snaptool", "two_arch_image_v1", v1);
        writeSeed(out / "snaptool", "two_arch_image_v2", v2);
    }

    // ---- corpus: a closed two-record file ----------------------------------
    {
        const fs::path tmp = out / "corpus.tmp";
        {
            corpus::Writer w(tmp.string());
            corpus::Entry e;
            e.arch = uarch::UArch::SKL;
            e.loop = false;
            e.bytes = suite.front().bytesU;
            w.append(e);
            e.arch = uarch::UArch::ICL;
            e.loop = true;
            e.hasMeasured = true;
            e.measured = 3.25;
            e.bytes = suite.front().bytesL;
            w.append(e);
            w.close();
        }
        std::ifstream in(tmp, std::ios::binary);
        std::vector<std::uint8_t> img(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        fs::remove(tmp);
        writeSeed(out / "corpus", "two_records", img);
    }

    std::printf("seeds written under %s\n", out.string().c_str());
    return 0;
}
