/**
 * @file
 * Fuzz harness for warm-start snapshot loading
 * (src/analysis/snapshot.h) — images can arrive from disk or over an
 * operator channel, so the parser must withstand arbitrary bytes.
 *
 * Drives validateSnapshot(), which runs the complete phase-1
 * parse-and-validate staging pass and commits nothing: the process-
 * wide intern arenas stay untouched whatever the input, which keeps
 * iterations independent. The harness asserts exactly that
 * (newRecords must stay 0) plus the reported size.
 */
#include <cstddef>
#include <cstdint>

#include "analysis/snapshot.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace facile::analysis;
    try {
        const SnapshotStats st = validateSnapshot(data, size);
        if (st.newRecords != 0)
            __builtin_trap(); // validation must commit nothing
        if (st.bytes != size)
            __builtin_trap();
    } catch (const SnapshotError &) {
        // Every malformed image must surface as SnapshotError — any
        // other escape (bad_alloc, UB caught by ASan) is a finding.
    }
    return 0;
}
