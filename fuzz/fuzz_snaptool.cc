/**
 * @file
 * Fuzz harness for the snapshot-as-data layer behind facile_snaptool
 * (analysis/snapshot.h: parseSnapshotModel / buildSnapshotImage) —
 * the tool's verify/convert/merge subcommands feed operator-supplied
 * files through exactly this path, in both image formats.
 *
 * Beyond no-crash/no-UB, the harness asserts the conversion
 * invariant the tool's bit-identity guarantee rests on: once a model
 * parses, build -> parse -> build is a fixed point in each format
 * (otherwise convert round trips could silently drift).
 */
#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/snapshot.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace facile::analysis;
    SnapshotModel m;
    try {
        m = parseSnapshotModel(data, size);
    } catch (const SnapshotError &) {
        return 0; // malformed image: rejection is the correct outcome
    }
    for (const SnapshotFormat fmt :
         {SnapshotFormat::V1, SnapshotFormat::V2}) {
        std::vector<std::uint8_t> img;
        try {
            img = buildSnapshotImage(m, fmt);
        } catch (const SnapshotError &) {
            // A parsed model can still be unbuildable in one format
            // (e.g. duplicate keys the tolerant v1 reader accepted
            // but the v2 index cannot represent).
            continue;
        }
        try {
            const SnapshotModel back =
                parseSnapshotModel(img.data(), img.size());
            if (buildSnapshotImage(back, fmt) != img)
                __builtin_trap(); // convert round trip drifted
        } catch (const SnapshotError &) {
            __builtin_trap(); // built images must always re-parse
        }
    }
    return 0;
}
