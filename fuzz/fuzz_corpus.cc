/**
 * @file
 * Fuzz harness for the corpus reader (src/corpus/corpus.h) — corpus
 * files are often produced by external tooling, so the streaming
 * parser must reject arbitrary bytes cleanly.
 *
 * Drives the in-memory Reader over the whole stream and asserts the
 * reader's contract: every yielded Entry respects the block-size
 * bound, and a clean EOF implies the header count matched (a mismatch
 * must have thrown CorpusError instead).
 */
#include <cstddef>
#include <cstdint>

#include "corpus/corpus.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace facile::corpus;
    try {
        Reader r(data, size);
        Entry e;
        std::uint64_t n = 0;
        while (r.next(e)) {
            if (e.bytes.size() > kMaxCorpusBlockBytes)
                __builtin_trap();
            ++n;
        }
        if (r.declaredCount() != kUnknownCount &&
            n != r.declaredCount())
            __builtin_trap(); // clean EOF promises the count matched
    } catch (const CorpusError &) {
        // The documented rejection path.
    }
    return 0;
}
