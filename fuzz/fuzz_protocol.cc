/**
 * @file
 * Fuzz harness for the server's request-frame parser
 * (src/server/frame_parser.h) — the code that consumes raw bytes off
 * accepted sockets.
 *
 * Input mapping: byte 0 picks the delivery pattern (read fragmentation
 * and buffer quota), so the same frame bytes are exercised
 * byte-at-a-time, in odd-sized chunks, in transport-sized chunks, and
 * all at once, against both a generous and a tiny buffered-bytes cap.
 *
 * The harness checks what the parser guarantees: frames never desync,
 * payload views stay in bounds (every payload byte is touched, so ASan
 * sees any lie), and the buffered backlog never exceeds the cap.
 * Semantic validation of op/arch is the server's job, not the
 * parser's, so none is asserted here.
 */
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "server/frame_parser.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace facile::server;
    if (size == 0)
        return 0;
    const std::uint8_t mode = data[0];
    ++data;
    --size;

    FrameParser::Options opts;
    // The tiny cap is below the largest legal frame on purpose: it
    // makes the reject path reachable with small fuzz inputs.
    opts.maxBuffered = (mode & 4)
                           ? FrameParser::kDefaultMaxBuffered
                           : 2048;
    FrameParser parser(opts);

    std::size_t off = 0;
    while (off < size) {
        std::size_t chunk;
        switch (mode & 3) {
          case 0:
            chunk = 1;
            break;
          case 1:
            chunk = 7;
            break;
          case 2:
            chunk = 4096;
            break;
          default:
            chunk = size - off;
            break;
        }
        chunk = std::min(chunk, size - off);
        if (!parser.feed(data + off, chunk)) {
            // Quota hit: the server closes the connection here. Model
            // that with a fresh parser so later bytes still fuzz.
            parser = FrameParser(opts);
        }
        off += chunk;

        FrameView f;
        while (parser.next(f)) {
            if (f.header.len > 0 && f.payload == nullptr)
                __builtin_trap();
            volatile std::uint8_t acc = 0;
            for (std::size_t i = 0; i < f.header.len; ++i)
                acc ^= f.payload[i];
            (void)acc;
        }
        if (parser.buffered() > opts.maxBuffered)
            __builtin_trap();
        // After a full drain, midFrame() and buffered() must agree.
        if (parser.midFrame() != (parser.buffered() > 0))
            __builtin_trap();
    }
    return 0;
}
