/**
 * @file
 * Replay driver for toolchains without libFuzzer (gcc): runs each file
 * argument — or every regular file under each directory argument —
 * through LLVMFuzzerTestOneInput once and exits. This is what makes
 * the checked-in regression corpus replayable as an ordinary ctest
 * entry on any compiler; actual coverage-guided fuzzing needs the
 * clang build (see fuzz/README.md).
 *
 * libFuzzer-style "-flag" arguments are ignored so the same command
 * lines work against both drivers.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t>
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-')
            continue;
        const fs::path p(argv[i]);
        if (fs::is_directory(p)) {
            for (const auto &e : fs::recursive_directory_iterator(p))
                if (e.is_regular_file())
                    files.push_back(e.path());
        } else {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files) {
        const std::vector<std::uint8_t> bytes = slurp(f);
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    }
    std::printf("replayed %zu inputs\n", files.size());
    return 0;
}
