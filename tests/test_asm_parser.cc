/**
 * @file
 * Assembly-text parser tests, including the round-trip property
 * parse(toString(inst)) == inst over generated instructions.
 */
#include <gtest/gtest.h>

#include "bhive/generator.h"
#include "isa/asm_parser.h"
#include "isa/builder.h"
#include "isa/encoder.h"

namespace facile::isa {
namespace {

TEST(AsmParser, SimpleRegReg)
{
    Inst i = parseInst("add rax, rbx");
    EXPECT_EQ(i.mnem, Mnemonic::ADD);
    EXPECT_EQ(i.ops[0].reg, RAX);
    EXPECT_EQ(i.ops[1].reg, RBX);
}

TEST(AsmParser, CaseInsensitiveAndComments)
{
    Inst i = parseInst("  ADD RAX, RBX   ; increment accumulator");
    EXPECT_EQ(i.mnem, Mnemonic::ADD);
}

TEST(AsmParser, Immediates)
{
    EXPECT_EQ(parseInst("add rax, 5").ops[1].imm, 5);
    EXPECT_EQ(parseInst("add rax, -7").ops[1].imm, -7);
    EXPECT_EQ(parseInst("add rax, 0x100").ops[1].imm, 256);
    EXPECT_EQ(parseInst("add rax, 5").ops[1].immWidth, 1);
    EXPECT_EQ(parseInst("add rax, 1000").ops[1].immWidth, 4);
    // 16-bit destination: imm16 (the LCP form).
    EXPECT_EQ(parseInst("add ax, 1000").ops[1].immWidth, 2);
}

TEST(AsmParser, MemoryOperands)
{
    Inst i = parseInst("mov rax, qword ptr [rbx+rcx*4+8]");
    ASSERT_TRUE(i.ops[1].isMem());
    EXPECT_EQ(i.ops[1].mem.base, RBX);
    EXPECT_EQ(i.ops[1].mem.index, RCX);
    EXPECT_EQ(i.ops[1].mem.scale, 4);
    EXPECT_EQ(i.ops[1].mem.disp, 8);
    EXPECT_EQ(i.ops[1].mem.width, 8);

    Inst neg = parseInst("mov eax, dword ptr [rsi-16]");
    EXPECT_EQ(neg.ops[1].mem.disp, -16);
    EXPECT_EQ(neg.ops[1].mem.width, 4);
}

TEST(AsmParser, MemWidthDefaultsToRegWidth)
{
    Inst i = parseInst("mov ecx, [rbx]");
    EXPECT_EQ(i.ops[1].mem.width, 4);
}

TEST(AsmParser, ConditionCodes)
{
    EXPECT_EQ(parseInst("jne -2").cc, Cond::NE);
    EXPECT_EQ(parseInst("jnz -2").cc, Cond::NE); // alias
    EXPECT_EQ(parseInst("ja -2").cc, Cond::NBE); // alias
    EXPECT_EQ(parseInst("sete al").mnem, Mnemonic::SETCC);
    EXPECT_EQ(parseInst("cmovge rax, rbx").cc, Cond::NL);
    EXPECT_EQ(parseInst("jmp -5").mnem, Mnemonic::JMP);
}

TEST(AsmParser, VexThreeOperand)
{
    Inst i = parseInst("vfmadd231pd xmm0, xmm1, xmm2");
    EXPECT_EQ(i.mnem, Mnemonic::VFMADD231PD);
    EXPECT_EQ(i.ops.size(), 3u);
}

TEST(AsmParser, NopWithLength)
{
    Inst i = parseInst("nop5");
    EXPECT_EQ(i.mnem, Mnemonic::NOP);
    EXPECT_EQ(i.nopLen, 5);
    EXPECT_EQ(parseInst("nop").nopLen, 1);
}

TEST(AsmParser, Errors)
{
    EXPECT_THROW(parseInst("bogus rax"), ParseError);
    EXPECT_THROW(parseInst("add rax, nonsense"), ParseError);
    EXPECT_THROW(parseInst(""), ParseError);
}

TEST(AsmParser, Listing)
{
    auto insts = parseListing("add rax, rbx\n"
                              "; a comment line\n"
                              "\n"
                              "imul rcx, rax ; trailing comment\n"
                              "jne -2\n");
    ASSERT_EQ(insts.size(), 3u);
    EXPECT_EQ(insts[2].mnem, Mnemonic::JCC);
}

TEST(AsmParser, Hex)
{
    auto bytes = parseHex("48 01 D8");
    EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0x48, 0x01, 0xD8}));
    EXPECT_EQ(parseHex("4801d8"), bytes);
    EXPECT_THROW(parseHex("4801d"), ParseError);
    EXPECT_THROW(parseHex("zz"), ParseError);
}

TEST(AsmParser, RoundTripThroughToString)
{
    // parse(toString(i)) must reproduce i for the whole generated suite.
    for (const auto &b : bhive::generateSuite(20231020, 6)) {
        for (const Inst &inst : b.bodyL) {
            std::string text = toString(inst);
            Inst parsed = parseInst(text);
            EXPECT_EQ(parsed.mnem, inst.mnem) << text;
            EXPECT_EQ(parsed.cc, inst.cc) << text;
            ASSERT_EQ(parsed.ops.size(), inst.ops.size()) << text;
            for (std::size_t i = 0; i < inst.ops.size(); ++i)
                EXPECT_EQ(parsed.ops[i], inst.ops[i])
                    << text << " operand " << i;
            // And the encodings agree byte for byte.
            EXPECT_EQ(encode(parsed), encode(inst)) << text;
        }
    }
}

} // namespace
} // namespace facile::isa
