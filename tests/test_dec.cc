/**
 * @file
 * Decoder model tests: Algorithm 1 steady-state behavior, complex
 * decoder steering, branch group termination, macro-fusion handling,
 * and the SimpleDec comparison model.
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "facile/dec.h"
#include "isa/builder.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

TEST(Dec, FourSimpleInstructionsTakeOneCycle)
{
    // 4 decoders on SKL, all instructions simple: 1 cycle/iteration.
    std::vector<Inst> insts(4, make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 1.0);
}

TEST(Dec, EightSimpleInstructionsTakeTwoCycles)
{
    std::vector<Inst> insts(8, make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 2.0);
}

TEST(Dec, SteadyStateNonIntegral)
{
    // 5 simple instructions on 4 decoders: alternating 2/1/2/1... no —
    // steady state packs groups of 4+1, 4+1: 2 cycles per iteration
    // until alignment recurs. From Algorithm 1: first instruction
    // rotates through decoders; cycles(u)/u converges to 5/4.
    std::vector<Inst> insts(5, make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 1.25);
}

TEST(Dec, ComplexInstructionRestartsGroup)
{
    // RMW needs the complex decoder: every instance starts a new decode
    // group. Two RMWs = 2 cycles per iteration.
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {M(mem(RBX)), R(RAX)}),
        make(Mnemonic::ADD, {M(mem(RSI)), R(RCX)}),
    };
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 2.0);
}

TEST(Dec, ComplexPlusSimplePacksOneCycle)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {M(mem(RBX)), R(RAX)}), // complex
        make(Mnemonic::ADD, {R(RCX), R(RDX)}),      // simple
        make(Mnemonic::ADD, {R(RSI), R(RDI)}),      // simple
    };
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 1.0);
}

TEST(Dec, BranchEndsDecodeGroup)
{
    // Five instructions ending in jmp: the branch terminates every
    // decode group, so the tail never packs with the next iteration's
    // head: 2 cycles/iteration. Without the branch, group formation
    // spans iterations and reaches 5/4 cycles.
    std::vector<Inst> movs(4, make(Mnemonic::MOV, {R(RAX), R(RBX)}));
    std::vector<Inst> withJmp = movs;
    withJmp.push_back(make(Mnemonic::JMP, {I(10, 1)}));
    std::vector<Inst> withMov = movs;
    withMov.push_back(make(Mnemonic::MOV, {R(RCX), R(RDX)}));
    EXPECT_DOUBLE_EQ(dec(blockOf(withJmp)), 2.0);
    EXPECT_DOUBLE_EQ(dec(blockOf(withMov)), 1.25);
}

TEST(Dec, MacroFusedPairOccupiesOneDecoderSlot)
{
    // cmp+je fuse; with three more simple instructions the whole body
    // still decodes in one cycle on SKL.
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {R(RAX), R(RBX)}),
        make(Mnemonic::MOV, {R(RCX), R(RDX)}),
        make(Mnemonic::MOV, {R(RSI), R(RDI)}),
        make(Mnemonic::CMP, {R(R8), R(R9)}),
        makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}),
    };
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 1.0);
}

TEST(Dec, SnbFusiblePairAvoidsLastDecoder)
{
    // On SnB a macro-fusible instruction cannot use the last decoder.
    // Three movs followed by cmp+jcc: the cmp would land on decoder 3
    // (the last one) and must defer to the next group.
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {R(RAX), R(RBX)}),
        make(Mnemonic::MOV, {R(RCX), R(RDX)}),
        make(Mnemonic::MOV, {R(RSI), R(RDI)}),
        make(Mnemonic::CMP, {R(R8), R(R9)}),
        makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}),
    };
    double snb = dec(blockOf(insts, UArch::SNB));
    double skl = dec(blockOf(insts, UArch::SKL));
    EXPECT_GT(snb, skl);
    EXPECT_DOUBLE_EQ(snb, 2.0);
}

TEST(Dec, MicrocodedInstructionBlocksSimpleDecoders)
{
    // div r32 (10 µops) leaves no simple decoders available: following
    // instructions wait for the next cycle.
    std::vector<Inst> insts = {
        make(Mnemonic::DIV, {R(ECX)}),
        make(Mnemonic::MOV, {R(RAX), R(RBX)}),
        make(Mnemonic::MOV, {R(RSI), R(RDI)}),
    };
    EXPECT_DOUBLE_EQ(dec(blockOf(insts)), 2.0);
}

TEST(Dec, SimpleDecFormula)
{
    // max(n/d, c): 6 instructions, 2 complex on SKL (d=4).
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {M(mem(RBX)), R(RAX)}),
        make(Mnemonic::ADD, {M(mem(RSI)), R(RCX)}),
        make(Mnemonic::MOV, {R(RAX), R(RBX)}),
        make(Mnemonic::MOV, {R(RCX), R(RDX)}),
        make(Mnemonic::MOV, {R(RSI), R(RDI)}),
        make(Mnemonic::MOV, {R(R8), R(R9)}),
    };
    EXPECT_DOUBLE_EQ(simpleDec(blockOf(insts)), 2.0);

    std::vector<Inst> simple(6, make(Mnemonic::MOV, {R(RAX), R(RBX)}));
    EXPECT_DOUBLE_EQ(simpleDec(blockOf(simple)), 1.5);
}

TEST(Dec, SimpleDecIgnoresMacroFusedBranch)
{
    std::vector<Inst> insts = {
        make(Mnemonic::CMP, {R(RAX), R(RBX)}),
        makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}),
    };
    // The fused pair counts as one instruction: 1/4.
    EXPECT_DOUBLE_EQ(simpleDec(blockOf(insts)), 0.25);
}

TEST(Dec, DecDominatesSimpleDec)
{
    // The full model must never predict fewer cycles than SimpleDec's
    // complex-decoder bound on complex-only blocks.
    std::vector<Inst> insts(3, make(Mnemonic::ADD, {M(mem(RBX)), R(RAX)}));
    bb::BasicBlock blk = blockOf(insts);
    EXPECT_GE(dec(blk), simpleDec(blk));
}

TEST(Dec, EmptyBlockIsZero)
{
    bb::BasicBlock blk;
    blk.arch = UArch::SKL;
    EXPECT_DOUBLE_EQ(dec(blk), 0.0);
}

} // namespace
} // namespace facile::model
