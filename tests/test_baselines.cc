/**
 * @file
 * Baseline-predictor tests: all comparators produce finite positive
 * predictions, are deterministic, and fail in the direction their
 * modelling philosophy predicts.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/predictor_iface.h"
#include "bhive/generator.h"
#include "isa/builder.h"

namespace facile::baselines {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

TEST(Baselines, FactoryProvidesAll)
{
    auto all = makeBaselines();
    EXPECT_EQ(all.size(), 6u);
    for (const auto &p : all)
        EXPECT_FALSE(p->name().empty());
}

TEST(Baselines, MakeBaselineByName)
{
    EXPECT_NO_THROW(makeBaseline("llvm-mca-like"));
    EXPECT_NO_THROW(makeBaseline("Facile"));
    EXPECT_NO_THROW(makeBaseline("uiCA-like (ref. sim)"));
    EXPECT_THROW(makeBaseline("bogus"), std::invalid_argument);
}

TEST(Baselines, FiniteAndDeterministicOnSuite)
{
    auto suite = bhive::generateSuite(11, 4);
    auto preds = makeBaselines();
    for (const auto &b : suite) {
        bb::BasicBlock blk = bb::analyze(b.bytesU, UArch::SKL);
        for (const auto &p : preds) {
            double v1 = p->predict(blk, false);
            double v2 = p->predict(blk, false);
            EXPECT_TRUE(std::isfinite(v1)) << p->name() << " " << b.id;
            EXPECT_GE(v1, 0.0) << p->name() << " " << b.id;
            EXPECT_DOUBLE_EQ(v1, v2) << p->name() << " " << b.id;
        }
    }
}

TEST(Baselines, LlvmMcaMissesFrontEndBottlenecks)
{
    // A predecode-bound block (LCP stalls): Facile sees the front-end
    // bound, the backend-only model does not.
    std::vector<Inst> body(4, make(Mnemonic::ADD, {R(AX), I(0x1234, 2)}));
    bb::BasicBlock blk = bb::analyze(body, UArch::SKL);
    FacilePredictor facile;
    auto mca = makeBaseline("llvm-mca-like");
    EXPECT_GT(facile.predict(blk, false), mca->predict(blk, false) + 0.5);
}

TEST(Baselines, CqaMissesDependenceChains)
{
    // A high-latency chain: CQA-like has no latency tables (its
    // dependence bound clamps latencies at 3 cycles), so a 4-cycle
    // mulsd accumulation chain is underestimated.
    std::vector<Inst> body = {make(Mnemonic::MULSD, {R(XMM0), R(XMM1)})};
    bb::BasicBlock blk = bb::analyze(body, UArch::SKL);
    auto cqa = makeBaseline("CQA-like");
    FacilePredictor facile;
    EXPECT_LT(cqa->predict(blk, false), facile.predict(blk, false));
    EXPECT_NEAR(facile.predict(blk, false), 4.0, 1e-6);
}

TEST(Baselines, OsacaIgnoresFrontEndAndLatency)
{
    std::vector<Inst> body = {make(Mnemonic::IMUL, {R(RAX), R(RAX)})};
    bb::BasicBlock blk = bb::analyze(body, UArch::SKL);
    auto osaca = makeBaseline("OSACA-like");
    // Port pressure of a single µop on p1: 1.0.
    EXPECT_NEAR(osaca->predict(blk, false), 1.0, 1e-9);
}

TEST(Baselines, SimulatorPredictorMatchesGroundTruthByConstruction)
{
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              make(Mnemonic::ADD, {R(RCX), R(RDX)})};
    bb::BasicBlock blk = bb::analyze(body, UArch::SKL);
    SimulatorPredictor simPred;
    double a = simPred.predict(blk, false);
    double b = simPred.predict(blk, false);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(Baselines, FacilePredictorRespectsAblation)
{
    std::vector<Inst> body = {make(Mnemonic::IMUL, {R(RAX), R(RAX)})};
    bb::BasicBlock blk = bb::analyze(body, UArch::SKL);
    FacilePredictor full;
    FacilePredictor noPrec(
        model::ModelConfig::without(model::Component::Precedence),
        "Facile w/o Precedence");
    EXPECT_GT(full.predict(blk, false), noPrec.predict(blk, false));
    EXPECT_EQ(noPrec.name(), "Facile w/o Precedence");
}

} // namespace
} // namespace facile::baselines
