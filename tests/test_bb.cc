/**
 * @file
 * Basic-block layer tests: decode+annotate pipeline, byte offsets,
 * macro-fusion folding, µop totals, and JCC-erratum boundary detection.
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "isa/builder.h"
#include "isa/encoder.h"

namespace facile::bb {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

TEST(BasicBlock, OffsetsAreConsecutive)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {R(RAX), R(RBX)}), // 3 bytes
        nop(5),
        make(Mnemonic::MOV, {R(RCX), M(mem(RBX, 8))}),
    };
    BasicBlock blk = analyze(insts, UArch::SKL);
    ASSERT_EQ(blk.insts.size(), 3u);
    EXPECT_EQ(blk.insts[0].start, 0);
    EXPECT_EQ(blk.insts[0].end, 3);
    EXPECT_EQ(blk.insts[1].start, 3);
    EXPECT_EQ(blk.insts[1].end, 8);
    EXPECT_EQ(blk.insts[2].start, 8);
    EXPECT_EQ(blk.lengthBytes(), blk.insts[2].end);
}

TEST(BasicBlock, MacroFusionFoldsPair)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {R(RAX), R(RBX)}),
        make(Mnemonic::CMP, {R(RCX), R(RDX)}),
        makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}),
    };
    BasicBlock blk = analyze(insts, UArch::SKL);
    ASSERT_EQ(blk.insts.size(), 3u);
    EXPECT_FALSE(blk.insts[1].fusedWithPrev);
    EXPECT_TRUE(blk.insts[2].fusedWithPrev);
    EXPECT_EQ(blk.insts[2].info->fusedUops, 0);
    EXPECT_TRUE(blk.insts[2].info->portUops.empty());
    // The pair contributes a single fused µop on the branch ports.
    EXPECT_EQ(blk.insts[1].info->fusedUops, 1);
    ASSERT_EQ(blk.insts[1].info->portUops.size(), 1u);
    // Total: add(1) + fused pair(1).
    EXPECT_EQ(blk.fusedUops(), 2);
}

TEST(BasicBlock, NoFusionWithNonFusibleCc)
{
    std::vector<Inst> insts = {
        make(Mnemonic::CMP, {R(RCX), R(RDX)}),
        makeCC(Mnemonic::JCC, Cond::S, {I(-2, 1)}), // sign cc: no fusion
    };
    BasicBlock blk = analyze(insts, UArch::SKL);
    EXPECT_FALSE(blk.insts[1].fusedWithPrev);
    EXPECT_EQ(blk.fusedUops(), 2);
}

TEST(BasicBlock, FusedPairKeepsMicroFusedLoad)
{
    // cmp rax, [rbx] + je fuses on SKL; the load µop must survive.
    std::vector<Inst> insts = {
        make(Mnemonic::CMP, {R(RAX), M(mem(RBX))}),
        makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}),
    };
    BasicBlock blk = analyze(insts, UArch::SKL);
    ASSERT_TRUE(blk.insts[1].fusedWithPrev);
    EXPECT_EQ(blk.insts[0].info->portUops.size(), 2u); // load + branch
}

TEST(BasicBlock, EndsInBranch)
{
    BasicBlock noBranch =
        analyze({make(Mnemonic::ADD, {R(RAX), R(RBX)})}, UArch::SKL);
    EXPECT_FALSE(noBranch.endsInBranch());
    BasicBlock withBranch = analyze(
        {make(Mnemonic::ADD, {R(RAX), R(RBX)}), backEdge()}, UArch::SKL);
    EXPECT_TRUE(withBranch.endsInBranch());
}

TEST(BasicBlock, IssueVsFusedUopsUnlamination)
{
    // Indexed store: fused 1, issue 2.
    BasicBlock blk = analyze(
        {make(Mnemonic::MOV, {M(memIdx(RBX, RCX, 8)), R(RAX)})},
        UArch::SKL);
    EXPECT_EQ(blk.fusedUops(), 1);
    EXPECT_EQ(blk.issueUops(), 2);
}

TEST(BasicBlock, JccErratumBoundaryDetection)
{
    // Pad so the branch ends exactly on a 32-byte boundary.
    std::vector<Inst> touching = {nop(15), nop(15), backEdge()};
    BasicBlock blk1 = analyze(touching, UArch::SKL);
    ASSERT_EQ(blk1.lengthBytes(), 32);
    EXPECT_TRUE(blk1.touchesJccErratumBoundary());

    // Branch comfortably inside one 32-byte region.
    std::vector<Inst> safe = {nop(4), backEdge()};
    BasicBlock blk2 = analyze(safe, UArch::SKL);
    EXPECT_FALSE(blk2.touchesJccErratumBoundary());

    // Branch crossing a 32-byte boundary.
    std::vector<Inst> crossing = {nop(15), nop(15), nop(1),
                                  makeCC(Mnemonic::JCC, Cond::NE,
                                         {I(1000, 4)})};
    BasicBlock blk3 = analyze(crossing, UArch::SKL);
    EXPECT_TRUE(blk3.touchesJccErratumBoundary());
}

TEST(BasicBlock, FusedPairCountsForErratum)
{
    // cmp at offset 30 (2 bytes: ends at 31), jcc at 32: the fused pair
    // crosses the boundary even though the jcc alone does not.
    std::vector<Inst> insts = {nop(15), nop(15),
                               make(Mnemonic::CMP, {R(EAX), R(EBX)}),
                               makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)})};
    BasicBlock blk = analyze(insts, UArch::SKL);
    ASSERT_TRUE(blk.insts[3].fusedWithPrev);
    EXPECT_TRUE(blk.touchesJccErratumBoundary());
}

TEST(BasicBlock, AnnotationsDifferAcrossArchs)
{
    std::vector<Inst> insts = {make(Mnemonic::MOV, {R(RAX), R(RBX)})};
    BasicBlock snb = analyze(insts, UArch::SNB);
    BasicBlock skl = analyze(insts, UArch::SKL);
    EXPECT_FALSE(snb.insts[0].info->eliminated);
    EXPECT_TRUE(skl.insts[0].info->eliminated);
}

TEST(BasicBlock, RoundTripThroughBytes)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {R(RAX), M(memIdx(RBX, RCX, 4, 100))}),
        make(Mnemonic::VFMADD231PD, {R(XMM0), R(XMM1), R(XMM2)}),
        backEdge(),
    };
    auto bytes = encodeBlock(insts);
    BasicBlock blk = analyze(bytes, UArch::RKL);
    ASSERT_EQ(blk.insts.size(), 3u);
    EXPECT_EQ(blk.bytes, bytes);
    EXPECT_EQ(blk.insts[1].dec->inst.mnem, Mnemonic::VFMADD231PD);
}

} // namespace
} // namespace facile::bb
