/**
 * @file
 * FrameParser unit tests: the connection-free request-frame parser
 * (src/server/frame_parser.h) must recover the same frames whatever
 * the read fragmentation — byte-at-a-time, split mid-header or
 * mid-payload, everything at once — must never desync on garbage that
 * happens to frame, and must enforce its buffered-byte quota without
 * corrupting state. Plus wire-codec coverage for the widened STATS
 * payload and the typed ProtocolError.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "server/frame_parser.h"

namespace facile::server {
namespace {

/** A PREDICT frame with recognizable payload bytes. */
std::vector<std::uint8_t>
predictFrame(std::uint64_t id, std::size_t payloadLen)
{
    engine::Request req;
    req.bytes.resize(payloadLen);
    for (std::size_t i = 0; i < payloadLen; ++i)
        req.bytes[i] = static_cast<std::uint8_t>(id + i);
    std::vector<std::uint8_t> frame;
    appendPredictRequest(frame, id, req);
    return frame;
}

/** Drain every complete frame, appending copies of the views. */
std::vector<std::pair<RequestHeader, std::vector<std::uint8_t>>>
drain(FrameParser &p)
{
    std::vector<std::pair<RequestHeader, std::vector<std::uint8_t>>> out;
    FrameView f;
    while (p.next(f))
        out.emplace_back(f.header,
                         std::vector<std::uint8_t>(
                             f.payload, f.payload + f.header.len));
    return out;
}

TEST(FrameParser, ByteAtATimeRecoversEveryFrame)
{
    std::vector<std::uint8_t> stream;
    for (std::uint64_t id = 1; id <= 5; ++id) {
        auto frame = predictFrame(id, static_cast<std::size_t>(id * 3));
        stream.insert(stream.end(), frame.begin(), frame.end());
    }

    FrameParser parser;
    std::vector<std::pair<RequestHeader, std::vector<std::uint8_t>>> got;
    for (std::uint8_t byte : stream) {
        ASSERT_TRUE(parser.feed(&byte, 1));
        auto frames = drain(parser);
        got.insert(got.end(), frames.begin(), frames.end());
    }

    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t id = 1; id <= 5; ++id) {
        const auto &[h, payload] = got[id - 1];
        EXPECT_EQ(h.id, id);
        EXPECT_EQ(h.op, static_cast<std::uint8_t>(Op::Predict));
        ASSERT_EQ(payload.size(), id * 3);
        for (std::size_t i = 0; i < payload.size(); ++i)
            EXPECT_EQ(payload[i], static_cast<std::uint8_t>(id + i));
    }
    EXPECT_EQ(parser.buffered(), 0u);
    EXPECT_FALSE(parser.midFrame());
}

TEST(FrameParser, SplitAcrossReadsAtEveryBoundary)
{
    // One frame, split at every possible position: the parser must
    // yield exactly one identical frame regardless of the cut.
    const auto frame = predictFrame(42, 100);
    for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
        FrameParser parser;
        ASSERT_TRUE(parser.feed(frame.data(), cut));
        FrameView f;
        if (cut < frame.size()) {
            EXPECT_FALSE(parser.next(f)) << "cut at " << cut;
            EXPECT_EQ(parser.midFrame(), cut > 0);
        }
        ASSERT_TRUE(
            parser.feed(frame.data() + cut, frame.size() - cut));
        ASSERT_TRUE(parser.next(f)) << "cut at " << cut;
        EXPECT_EQ(f.header.id, 42u);
        ASSERT_EQ(f.header.len, 100u);
        EXPECT_EQ(f.payload[0], 42);
        EXPECT_FALSE(parser.next(f));
        EXPECT_FALSE(parser.midFrame());
    }
}

TEST(FrameParser, GarbagePrefixFramesWithoutDesync)
{
    // 16 garbage bytes parse as *some* header — the parser's contract
    // is framing, not semantics. Craft garbage whose u16 len field
    // frames a bogus payload, follow it with a real frame, and check
    // the real frame comes out intact right after the bogus one.
    std::uint8_t garbage[kRequestHeaderSize];
    std::memset(garbage, 0xAB, sizeof garbage);
    const std::uint16_t bogusLen = 37;
    std::memcpy(garbage + 14, &bogusLen, 2);

    std::vector<std::uint8_t> stream(garbage, garbage + sizeof garbage);
    stream.insert(stream.end(), bogusLen, 0xCD);
    const auto real = predictFrame(7, 20);
    stream.insert(stream.end(), real.begin(), real.end());

    FrameParser parser;
    ASSERT_TRUE(parser.feed(stream.data(), stream.size()));
    auto frames = drain(parser);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].first.op, 0xAB);
    EXPECT_EQ(frames[0].second.size(), bogusLen);
    EXPECT_EQ(frames[1].first.id, 7u);
    EXPECT_EQ(frames[1].first.op,
              static_cast<std::uint8_t>(Op::Predict));
    EXPECT_EQ(frames[1].second.size(), 20u);
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, BufferedQuotaRejectsWithoutBuffering)
{
    FrameParser::Options opts;
    opts.maxBuffered = 64;
    FrameParser parser(opts);

    std::vector<std::uint8_t> partial(60, 0xEE); // no complete frame
    ASSERT_TRUE(parser.feed(partial.data(), partial.size()));
    EXPECT_EQ(parser.buffered(), 60u);

    // Overflowing feed is rejected whole and buffers nothing.
    std::vector<std::uint8_t> more(10, 0xEE);
    EXPECT_FALSE(parser.feed(more.data(), more.size()));
    EXPECT_EQ(parser.buffered(), 60u);

    // The parser stays consistent: room under the cap still works.
    EXPECT_TRUE(parser.feed(more.data(), 4));
    EXPECT_EQ(parser.buffered(), 64u);
}

TEST(FrameParser, CompactionPreservesPendingPartialFrame)
{
    // Drain a large consumed prefix, leave a partial frame, and keep
    // feeding: compaction must not lose or shift the partial bytes.
    FrameParser parser;
    for (std::uint64_t id = 1; id <= 40; ++id) {
        auto frame = predictFrame(id, 3000);
        ASSERT_TRUE(parser.feed(frame.data(), frame.size()));
        auto frames = drain(parser);
        ASSERT_EQ(frames.size(), 1u);
        EXPECT_EQ(frames[0].first.id, id);
    }
    const auto last = predictFrame(99, 200);
    ASSERT_TRUE(parser.feed(last.data(), last.size() - 50));
    EXPECT_TRUE(parser.midFrame());
    ASSERT_TRUE(
        parser.feed(last.data() + last.size() - 50, 50));
    auto frames = drain(parser);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].first.id, 99u);
    ASSERT_EQ(frames[0].second.size(), 200u);
    EXPECT_EQ(frames[0].second[0], 99);
}

TEST(Protocol, StatsPayloadRoundTripsAllCounters)
{
    ServerStats s;
    std::uint64_t v = 1;
    for (std::uint64_t *field :
         {&s.requests, &s.predictions, &s.batches, &s.maxBatch,
          &s.analysisCacheHits, &s.predictionCacheHits, &s.analyzed,
          &s.overloadedQueue, &s.overloadedConn, &s.readTimeouts,
          &s.quotaClosed, &s.connectionsShed, &s.connectionsAccepted,
          &s.connectionsOpen, &s.uptimeMs, &s.epollWakeups,
          &s.shortWrites, &s.ringFull, &s.reconnects, &s.retriedRequests,
          &s.drainSheds, &s.snapshotFallbacks, &s.snapshotLoadMode})
        *field = v++;

    std::vector<std::uint8_t> frame;
    appendStatsResponse(frame, 5, s);
    ResponseHeader h = parseResponseHeader(frame.data());
    ASSERT_EQ(h.len, kStatsFields * 8);
    auto back =
        decodeStatsPayload(frame.data() + kResponseHeaderSize, h.len);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->requests, 1u);
    EXPECT_EQ(back->overloadedQueue, 8u);
    EXPECT_EQ(back->overloadedConn, 9u);
    EXPECT_EQ(back->readTimeouts, 10u);
    EXPECT_EQ(back->quotaClosed, 11u);
    EXPECT_EQ(back->connectionsShed, 12u);
    EXPECT_EQ(back->uptimeMs, 15u);
    EXPECT_EQ(back->epollWakeups, 16u);
    EXPECT_EQ(back->shortWrites, 17u);
    EXPECT_EQ(back->ringFull, 18u);
    EXPECT_EQ(back->reconnects, 19u);
    EXPECT_EQ(back->retriedRequests, 20u);
    EXPECT_EQ(back->drainSheds, 21u);
    EXPECT_EQ(back->snapshotFallbacks, 22u);
    EXPECT_EQ(back->snapshotLoadMode, 23u);
}

TEST(Protocol, StatsPayloadIsAppendOnlyAcrossVersions)
{
    ServerStats s;
    s.requests = 7;
    s.uptimeMs = 42;
    s.epollWakeups = 99;
    std::vector<std::uint8_t> frame;
    appendStatsResponse(frame, 5, s);
    const std::uint8_t *payload = frame.data() + kResponseHeaderSize;

    // A v1 (15-field, thread-per-connection era) payload still
    // decodes; the appended fields read as zero.
    auto v1 = decodeStatsPayload(payload, kStatsFieldsV1 * 8);
    ASSERT_TRUE(v1.has_value());
    EXPECT_EQ(v1->requests, 7u);
    EXPECT_EQ(v1->uptimeMs, 42u);
    EXPECT_EQ(v1->epollWakeups, 0u);

    // A PR 7-era (18-field) payload decodes with the PR 8
    // fault-tolerance counters reading zero.
    auto v18 = decodeStatsPayload(payload, 18 * 8);
    ASSERT_TRUE(v18.has_value());
    EXPECT_EQ(v18->epollWakeups, 99u);
    EXPECT_EQ(v18->drainSheds, 0u);
    EXPECT_EQ(v18->snapshotFallbacks, 0u);

    // A PR 8-era (22-field) payload decodes with the PR 9 snapshot
    // load-mode field reading zero.
    auto v22 = decodeStatsPayload(payload, 22 * 8);
    ASSERT_TRUE(v22.has_value());
    EXPECT_EQ(v22->snapshotLoadMode, 0u);

    // A future server may append more fields; unknown extras are
    // ignored, not rejected.
    std::vector<std::uint8_t> longer(payload,
                                     payload + kStatsFields * 8);
    longer.resize(longer.size() + 16, 0xab);
    auto future = decodeStatsPayload(longer.data(), longer.size());
    ASSERT_TRUE(future.has_value());
    EXPECT_EQ(future->requests, 7u);
    EXPECT_EQ(future->epollWakeups, 99u);

    // Below the v1 floor, or not a whole number of u64s: malformed.
    EXPECT_FALSE(decodeStatsPayload(payload, (kStatsFieldsV1 - 1) * 8)
                     .has_value());
    EXPECT_FALSE(
        decodeStatsPayload(payload, kStatsFieldsV1 * 8 + 3).has_value());
}

TEST(Protocol, ProtocolErrorCarriesWireStatus)
{
    ProtocolError overloaded("server overloaded", Status::Overloaded);
    EXPECT_EQ(overloaded.status(), Status::Overloaded);
    EXPECT_TRUE(std::string(overloaded.what()).find("protocol:") == 0);

    ProtocolError local("malformed payload");
    EXPECT_EQ(local.status(), Status::Ok); // no wire status involved

    // ProtocolError is a runtime_error: code catching the old type
    // still catches the new one.
    EXPECT_THROW(throw ProtocolError("x"), std::runtime_error);
}

} // namespace
} // namespace facile::server
