/**
 * @file
 * Benchmark-suite generator tests: determinism, decodability of every
 * generated block on every µarch, U/L variant structure, category
 * coverage, and stack balance.
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "isa/decoder.h"

namespace facile::bhive {
namespace {

TEST(Bhive, DeterministicForSameSeed)
{
    auto a = generateSuite(7, 5);
    auto b = generateSuite(7, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bytesU, b[i].bytesU) << a[i].id;
        EXPECT_EQ(a[i].bytesL, b[i].bytesL) << a[i].id;
    }
}

TEST(Bhive, DifferentSeedsDiffer)
{
    auto a = generateSuite(7, 5);
    auto b = generateSuite(8, 5);
    int different = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        different += a[i].bytesU != b[i].bytesU;
    EXPECT_GT(different, static_cast<int>(a.size()) / 2);
}

TEST(Bhive, SuiteSizeAndCategories)
{
    auto suite = generateSuite(1, 4);
    EXPECT_EQ(suite.size(),
              static_cast<std::size_t>(4 * kNumCategories));
    int perCat[kNumCategories] = {};
    for (const auto &b : suite)
        ++perCat[static_cast<int>(b.category)];
    for (int c = 0; c < kNumCategories; ++c)
        EXPECT_EQ(perCat[c], 4) << categoryName(static_cast<Category>(c));
}

TEST(Bhive, EveryBlockDecodes)
{
    for (const auto &b : generateSuite(20231020, 6)) {
        EXPECT_NO_THROW({
            auto u = isa::decodeBlock(b.bytesU);
            EXPECT_EQ(u.size(), b.bodyU.size()) << b.id;
        }) << b.id;
        EXPECT_NO_THROW(isa::decodeBlock(b.bytesL)) << b.id;
    }
}

TEST(Bhive, EveryBlockAnalyzesOnAllArchs)
{
    auto suite = generateSuite(5, 3);
    for (uarch::UArch a : uarch::allUArchs()) {
        for (const auto &b : suite) {
            EXPECT_NO_THROW(bb::analyze(b.bytesU, a)) << b.id;
            EXPECT_NO_THROW(bb::analyze(b.bytesL, a)) << b.id;
        }
    }
}

TEST(Bhive, UVariantHasNoBranchLVariantEndsInOne)
{
    for (const auto &b : generateSuite(3, 5)) {
        for (const auto &inst : b.bodyU)
            EXPECT_FALSE(inst.isBranch()) << b.id;
        ASSERT_GE(b.bodyL.size(), 2u);
        EXPECT_TRUE(b.bodyL.back().isBranch()) << b.id;
        // The L body is the U body plus dec+jnz.
        EXPECT_EQ(b.bodyL.size(), b.bodyU.size() + 2) << b.id;
    }
}

TEST(Bhive, LcpCategoryContainsLcpInstructions)
{
    int lcpBlocks = 0;
    for (const auto &b : generateSuite(20231020, 10)) {
        if (b.category != Category::LcpStress)
            continue;
        auto decoded = isa::decodeBlock(b.bytesU);
        for (const auto &d : decoded)
            if (d.lcp) {
                ++lcpBlocks;
                break;
            }
    }
    EXPECT_GT(lcpBlocks, 5);
}

TEST(Bhive, StackBalanced)
{
    for (const auto &b : generateSuite(17, 10)) {
        int depth = 0;
        for (const auto &inst : b.bodyU) {
            if (inst.mnem == isa::Mnemonic::PUSH)
                ++depth;
            if (inst.mnem == isa::Mnemonic::POP) {
                --depth;
                EXPECT_GE(depth, 0) << b.id;
            }
        }
        EXPECT_EQ(depth, 0) << b.id;
    }
}

TEST(Bhive, R15ReservedForLoopCounter)
{
    // The generator must not write r15 inside the body: the L variant's
    // dec r15 owns it.
    for (const auto &b : generateSuite(20231020, 6)) {
        for (const auto &inst : b.bodyU) {
            if (inst.ops.empty() || !inst.ops[0].isReg())
                continue;
            if (inst.mnem == isa::Mnemonic::POP)
                continue; // pop targets are scratch
            EXPECT_FALSE(inst.ops[0].reg.isGpr() &&
                         inst.ops[0].reg.idx == 15)
                << b.id << ": " << isa::toString(inst);
        }
    }
}

TEST(Bhive, DefaultSuiteIsStable)
{
    const auto &s1 = defaultSuite();
    const auto &s2 = defaultSuite();
    EXPECT_EQ(&s1, &s2); // cached singleton
    EXPECT_EQ(s1.size(), static_cast<std::size_t>(60 * kNumCategories));
}

} // namespace
} // namespace facile::bhive
