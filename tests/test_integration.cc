/**
 * @file
 * End-to-end integration tests, parameterized over all nine
 * microarchitectures: Facile vs the reference simulator on the
 * generated suite (accuracy thresholds per notion), the optimism
 * property reported in the paper, monotonicity of ablations, and
 * cross-predictor ordering.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.h"

namespace facile {
namespace {

using uarch::UArch;

/** Shared fixture: prepare each µarch suite once (simulation is slow). */
class Integration : public ::testing::TestWithParam<UArch>
{
  protected:
    static const eval::ArchSuite &
    suiteFor(UArch arch)
    {
        static std::map<UArch, eval::ArchSuite> cache;
        auto it = cache.find(arch);
        if (it == cache.end()) {
            it = cache
                     .emplace(arch, eval::prepare(
                                        arch, bhive::generateSuite(555, 8)))
                     .first;
        }
        return it->second;
    }
};

INSTANTIATE_TEST_SUITE_P(UArch, Integration,
                         ::testing::ValuesIn(uarch::allUArchs()),
                         [](const auto &info) {
                             return uarch::config(info.param).abbrev;
                         });

TEST_P(Integration, FacileTracksSimulatorClosely)
{
    const auto &suite = suiteFor(GetParam());
    baselines::FacilePredictor facile;
    eval::Accuracy u = eval::evaluate(facile, suite, false);
    eval::Accuracy l = eval::evaluate(facile, suite, true);
    EXPECT_LT(u.mape, 0.12) << "TPU MAPE too high";
    EXPECT_LT(l.mape, 0.12) << "TPL MAPE too high";
    EXPECT_GT(u.kendall, 0.80);
    EXPECT_GT(l.kendall, 0.80);
}

TEST_P(Integration, FacileIsMostlyOptimistic)
{
    // Paper section 6.2: Facile is always optimistic (predicts at most
    // the measured throughput). Small simulator-side second-order
    // effects allow rare exceptions; require >= 90% of blocks.
    const auto &suite = suiteFor(GetParam());
    baselines::FacilePredictor facile;
    auto preds = eval::runPredictor(facile, suite, false);
    int optimistic = 0;
    for (std::size_t i = 0; i < preds.size(); ++i)
        optimistic += preds[i] <= suite.measuredU[i] + 0.01;
    EXPECT_GE(optimistic, static_cast<int>(preds.size() * 9) / 10);
}

TEST_P(Integration, AblationsDegradeAccuracy)
{
    const auto &suite = suiteFor(GetParam());
    baselines::FacilePredictor full;
    double fullMape = eval::evaluate(full, suite, false).mape;

    // Dropping Ports or Precedence must hurt (they carry the back end).
    for (model::Component c :
         {model::Component::Ports, model::Component::Precedence}) {
        baselines::FacilePredictor ablated(model::ModelConfig::without(c));
        double mape = eval::evaluate(ablated, suite, false).mape;
        EXPECT_GE(mape + 1e-9, fullMape)
            << "w/o " << model::componentName(c);
    }

    // "only X" can never beat the full model on MAPE by more than noise.
    for (int ci = 0; ci < model::kNumComponents; ++ci) {
        model::Component c = static_cast<model::Component>(ci);
        if (c == model::Component::DSB || c == model::Component::LSD)
            continue; // not used under TPU
        baselines::FacilePredictor only(model::ModelConfig::only(c));
        double mape = eval::evaluate(only, suite, false).mape;
        EXPECT_GE(mape + 1e-9, fullMape)
            << "only " << model::componentName(c);
    }
}

TEST_P(Integration, FacileBeatsEveryBaseline)
{
    const auto &suite = suiteFor(GetParam());
    baselines::FacilePredictor facile;
    double facileU = eval::evaluate(facile, suite, false).mape;
    double facileL = eval::evaluate(facile, suite, true).mape;
    for (const auto &p : baselines::makeBaselines()) {
        EXPECT_LT(facileU, eval::evaluate(*p, suite, false).mape)
            << p->name() << " (U)";
        EXPECT_LT(facileL, eval::evaluate(*p, suite, true).mape)
            << p->name() << " (L)";
    }
}

TEST_P(Integration, ComponentBoundsAreLowerBoundsOnMeasurement)
{
    // Every individual component bound must not exceed the measured
    // throughput by more than rounding noise on more than a small
    // fraction of blocks (components are relaxations of the machine).
    const auto &suite = suiteFor(GetParam());
    int violations = 0, total = 0;
    for (std::size_t i = 0; i < suite.blocksU.size(); ++i) {
        model::Prediction p = model::predictUnrolled(suite.blocksU[i]);
        for (int ci = 0; ci < model::kNumComponents; ++ci) {
            double v = p.componentValue[ci];
            if (std::isnan(v))
                continue;
            ++total;
            violations += v > suite.measuredU[i] + 0.05;
        }
    }
    EXPECT_LT(violations, total / 10);
}

TEST_P(Integration, LoopPredictionsHonorFrontEndSelection)
{
    const auto &suite = suiteFor(GetParam());
    const auto &cfg = uarch::config(GetParam());
    for (const auto &blk : suite.blocksL) {
        model::Prediction p = model::predictLoop(blk);
        bool jcc = cfg.jccErratum && blk.touchesJccErratumBoundary();
        bool lsdUsed = !std::isnan(
            p.componentValue[static_cast<int>(model::Component::LSD)]);
        bool dsbUsed = !std::isnan(
            p.componentValue[static_cast<int>(model::Component::DSB)]);
        bool legacyUsed = !std::isnan(
            p.componentValue[static_cast<int>(model::Component::Predec)]);
        EXPECT_EQ(lsdUsed + dsbUsed + legacyUsed, 1)
            << "exactly one front-end path";
        if (jcc)
            EXPECT_TRUE(legacyUsed);
        if (!cfg.lsdEnabled)
            EXPECT_FALSE(lsdUsed);
    }
}

} // namespace
} // namespace facile
