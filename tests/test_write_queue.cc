/**
 * @file
 * WriteQueue unit tests (src/server/write_queue.h): the per-connection
 * scatter-gather writer state machine, driven against socketpairs with
 * deliberately tiny send buffers so partial writes and EPOLLOUT-style
 * resumes happen on every flush. The invariant under test is
 * byte-exactness: whatever interleaving of short writes, queued tails,
 * and fresh gather flushes occurs, the peer must read exactly the
 * concatenation of everything submitted, in submission order.
 */
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "server/net_util.h"
#include "server/write_queue.h"

namespace facile::server {
namespace {

/** Nonblocking socketpair; sndbuf > 0 shrinks the writer's buffer. */
struct Pair
{
    int w = -1; ///< writer end (nonblocking)
    int r = -1; ///< reader end

    explicit Pair(int sndbuf = 0)
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        w = fds[0];
        r = fds[1];
        if (sndbuf > 0) {
            // The kernel doubles and clamps; whatever it grants, it is
            // small enough to force short writes for our payloads.
            ::setsockopt(w, SOL_SOCKET, SO_SNDBUF, &sndbuf,
                         sizeof sndbuf);
            int rcvbuf = sndbuf;
            ::setsockopt(r, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof rcvbuf);
        }
        EXPECT_TRUE(setNonBlocking(w));
        EXPECT_TRUE(setNonBlocking(r));
    }

    ~Pair()
    {
        if (w >= 0)
            ::close(w);
        if (r >= 0)
            ::close(r);
    }

    /** Drain whatever is currently readable. */
    std::vector<std::uint8_t>
    drain()
    {
        std::vector<std::uint8_t> out;
        std::uint8_t chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(r, chunk, sizeof chunk, 0);
            if (n <= 0)
                break;
            out.insert(out.end(), chunk, chunk + n);
        }
        return out;
    }
};

std::vector<std::uint8_t>
pattern(std::size_t len, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(len);
    for (std::size_t i = 0; i < len; ++i)
        v[i] = static_cast<std::uint8_t>(seed + 31 * i);
    return v;
}

iovec
iov(const std::vector<std::uint8_t> &v)
{
    return {const_cast<std::uint8_t *>(v.data()), v.size()};
}

TEST(WriteQueue, DrainsSmallGatherWithoutQueueing)
{
    Pair p;
    WriteQueue q;
    const auto a = pattern(100, 1), b = pattern(200, 2);
    const iovec vs[] = {iov(a), iov(b)};
    ASSERT_EQ(q.writeGather(p.w, vs, 2), WriteQueue::Result::Drained);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.bytesQueued(), 0u);

    auto got = p.drain();
    std::vector<std::uint8_t> want = a;
    want.insert(want.end(), b.begin(), b.end());
    EXPECT_EQ(got, want);
}

TEST(WriteQueue, ShortWriteQueuesTailAndResumes)
{
    Pair p(4096);
    WriteQueue q;
    // Far larger than the socket buffers: the first flush must block
    // with a queued tail.
    const auto big = pattern(1 << 20, 7);
    const iovec v = iov(big);
    ASSERT_EQ(q.writeGather(p.w, &v, 1), WriteQueue::Result::Blocked);
    EXPECT_FALSE(q.empty());
    EXPECT_GT(q.bytesQueued(), 0u);

    // Alternate reader drains with EPOLLOUT-style resumes until the
    // queue empties; the peer must see the exact byte stream.
    std::vector<std::uint8_t> got = p.drain();
    for (int spin = 0; spin < 100000 && !q.empty(); ++spin) {
        const WriteQueue::Result r = q.flush(p.w);
        ASSERT_NE(r, WriteQueue::Result::PeerGone);
        auto piece = p.drain();
        got.insert(got.end(), piece.begin(), piece.end());
    }
    EXPECT_TRUE(q.empty());
    auto piece = p.drain();
    got.insert(got.end(), piece.begin(), piece.end());
    EXPECT_EQ(got, big);
}

TEST(WriteQueue, QueuedTailGoesOutBeforeFreshExtras)
{
    Pair p(4096);
    WriteQueue q;
    const auto first = pattern(1 << 19, 3);
    const auto second = pattern(1 << 19, 11);
    const iovec v1 = iov(first);
    ASSERT_EQ(q.writeGather(p.w, &v1, 1), WriteQueue::Result::Blocked);

    // Submit a second response while the first's tail is still queued
    // (the collector does exactly this when a batch completes while
    // the previous flush is blocked on EPOLLOUT).
    const iovec v2 = iov(second);
    std::vector<std::uint8_t> got;
    WriteQueue::Result r = q.writeGather(p.w, &v2, 1);
    ASSERT_NE(r, WriteQueue::Result::PeerGone);
    for (int spin = 0; spin < 100000 && !q.empty(); ++spin) {
        auto piece = p.drain();
        got.insert(got.end(), piece.begin(), piece.end());
        r = q.flush(p.w);
        ASSERT_NE(r, WriteQueue::Result::PeerGone);
    }
    auto piece = p.drain();
    got.insert(got.end(), piece.begin(), piece.end());

    std::vector<std::uint8_t> want = first;
    want.insert(want.end(), second.begin(), second.end());
    EXPECT_EQ(got, want); // order preserved across the partial write
}

TEST(WriteQueue, ManySegmentsBeyondIovCapDrainExactly)
{
    Pair p(8192);
    WriteQueue q;
    // 3x the per-sendmsg iovec cap, so one gather call must loop.
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<iovec> vs;
    std::vector<std::uint8_t> want;
    for (std::size_t i = 0; i < 3 * WriteQueue::kMaxIov; ++i) {
        bufs.push_back(
            pattern(50 + (i % 7), static_cast<std::uint8_t>(i)));
        want.insert(want.end(), bufs.back().begin(), bufs.back().end());
    }
    for (const auto &b : bufs)
        vs.push_back(iov(b));

    std::vector<std::uint8_t> got;
    WriteQueue::Result r = q.writeGather(p.w, vs.data(), vs.size());
    ASSERT_NE(r, WriteQueue::Result::PeerGone);
    for (int spin = 0; spin < 100000 && !q.empty(); ++spin) {
        auto piece = p.drain();
        got.insert(got.end(), piece.begin(), piece.end());
        r = q.flush(p.w);
        ASSERT_NE(r, WriteQueue::Result::PeerGone);
    }
    auto piece = p.drain();
    got.insert(got.end(), piece.begin(), piece.end());
    EXPECT_EQ(got, want);
}

TEST(WriteQueue, EmptyIovecsAreSkipped)
{
    Pair p;
    WriteQueue q;
    const auto a = pattern(64, 9);
    const std::vector<std::uint8_t> empty;
    const iovec vs[] = {iov(empty), iov(a), iov(empty)};
    ASSERT_EQ(q.writeGather(p.w, vs, 3), WriteQueue::Result::Drained);
    EXPECT_EQ(p.drain(), a);
}

TEST(WriteQueue, ClosedPeerReportsPeerGone)
{
    Pair p(4096);
    WriteQueue q;
    ::close(p.r);
    p.r = -1;
    const auto a = pattern(1 << 16, 5);
    const iovec v = iov(a);
    // The very first sendmsg may succeed into the socket buffer;
    // repeated flushes must surface EPIPE as PeerGone, not loop.
    WriteQueue::Result r = q.writeGather(p.w, &v, 1);
    for (int spin = 0; spin < 64 && r != WriteQueue::Result::PeerGone;
         ++spin)
        r = q.writeGather(p.w, &v, 1);
    EXPECT_EQ(r, WriteQueue::Result::PeerGone);
}

} // namespace
} // namespace facile::server
