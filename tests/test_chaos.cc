/**
 * @file
 * Chaos soak: the end-to-end fault-tolerance property the rest of the
 * robustness layer exists to serve. A prediction server runs in a
 * CHILD process; a fleet of self-healing clients (ResilientClient,
 * connection count adapted to RLIMIT_NOFILE toward a 256-connection
 * target) sustains pipelined traffic against it. Mid-traffic the
 * parent SIGKILLs the server, tears the primary snapshot file the way
 * a mid-write kill would, and respawns the server warm — it must fall
 * back to the previous snapshot generation, and every client must
 * reconnect and replay with ZERO caller-visible failures and
 * bit-identical predictions throughout.
 *
 * In FACILE_FAULT_INJECT builds the child additionally runs with
 * env-armed chaos (FACILE_FAULT_SEED / FACILE_FAULT_ONE_IN): seeded
 * random EINTR and short reads/writes at every wrapped syscall site
 * while it serves.
 *
 * The server half is this same binary re-executed with
 * --gtest_filter=ChaosProbe.Serve (the test_snapshot child-probe
 * idiom, plus fork/exec so the parent holds the pid to SIGKILL).
 */
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/snapshot.h"
#include "bhive/generator.h"
#include "facile/component.h"
#include "server/resilient_client.h"
#include "server/server.h"

namespace facile::server {
namespace {

std::string
chaosSockPath()
{
    return "/tmp/facile_chaos_" + std::to_string(::getpid()) + ".sock";
}

std::string
chaosSnapPath()
{
    return "/tmp/facile_chaos_" + std::to_string(::getpid()) + ".bin";
}

/**
 * Child half: serve on FACILE_CHAOS_SOCK until SIGKILLed. Saves go to
 * FACILE_CHAOS_SNAP; FACILE_CHAOS_LOAD additionally warm-starts from
 * it (through the generation walk). Skips in a normal test run.
 */
TEST(ChaosProbe, Serve)
{
    const char *sock = std::getenv("FACILE_CHAOS_SOCK");
    if (!sock)
        GTEST_SKIP() << "probe mode only (spawned by ChaosSoak)";
    ServerOptions opts;
    opts.unixPath = sock;
    if (const char *snap = std::getenv("FACILE_CHAOS_SNAP")) {
        opts.snapshotPath = snap;
        if (std::getenv("FACILE_CHAOS_LOAD"))
            opts.snapshotLoadPath = snap;
    }
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();
    for (;;) // only SIGKILL ends a chaos probe
        std::this_thread::sleep_for(std::chrono::seconds(1));
}

/** fork+exec this binary as a chaos server child; returns its pid. */
pid_t
spawnServerChild(const std::string &sock, const std::string &snap,
                 bool warmLoad)
{
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
    EXPECT_GT(n, 0);
    self[n] = '\0';

    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    // Child. Env over argv so the gtest filter stays a plain string.
    ::setenv("FACILE_CHAOS_SOCK", sock.c_str(), 1);
    ::setenv("FACILE_CHAOS_SNAP", snap.c_str(), 1);
    if (warmLoad)
        ::setenv("FACILE_CHAOS_LOAD", "1", 1);
    // Seeded chaos inside the serving child (no-op env in builds
    // without FACILE_FAULT_INJECT): 1-in-97 of every wrapped syscall
    // site EINTRs or goes short while the fleet hammers it.
    ::setenv("FACILE_FAULT_SEED", warmLoad ? "1302" : "713", 1);
    ::setenv("FACILE_FAULT_ONE_IN", "97", 1);
    ::execl(self, self, "--gtest_filter=ChaosProbe.Serve",
            static_cast<char *>(nullptr));
    std::_Exit(127); // exec failed
}

/** Wait (bounded) until a listener accepts on @p path. */
bool
waitForServer(const std::string &path)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof addr.sun_path - 1);
        const int rc =
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr);
        ::close(fd);
        if (rc == 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

void
removeSnapshotGenerations(const std::string &snap)
{
    for (int g = 0; g <= analysis::kSnapshotGenerations; ++g)
        std::remove(analysis::snapshotGenerationPath(snap, g).c_str());
}

TEST(ChaosSoak, SigkillUnderLoadRestartsWarmAndFleetSelfHeals)
{
    const std::string sock = chaosSockPath();
    const std::string snap = chaosSnapPath();
    removeSnapshotGenerations(snap);

    // Fleet sizing toward the 256-connection target, adapted to the
    // parent's fd budget (each ResilientClient holds one socket).
    rlimit rl{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &rl), 0);
    const std::size_t fleet = std::min<std::size_t>(
        256, rl.rlim_cur > 300 ? (rl.rlim_cur - 150) / 2 : 32);
    const std::size_t threads =
        std::min<std::size_t>(8, std::max<std::size_t>(1, fleet / 8));

    // Ground truth, serially, in this process: bit-identity across
    // the crash/restart is judged against these.
    const auto &suiteRef = bhive::generateSuite(2024, 2);
    std::vector<engine::Request> batch;
    for (const auto &b : suiteRef) {
        batch.push_back({b.bytesU, uarch::UArch::SKL, false, {}});
        batch.push_back({b.bytesL, uarch::UArch::ICL, true, {}});
    }
    model::PredictScratch scratch;
    std::vector<model::Prediction> expected;
    for (const auto &r : batch)
        expected.push_back(model::predict(bb::analyze(r.bytes, r.arch),
                                          r.loop, r.config, scratch));

    // ---- phase 1: cold server, fleet connects and verifies --------
    pid_t server = spawnServerChild(sock, snap, /*warmLoad=*/false);
    ASSERT_GT(server, 0);
    ASSERT_TRUE(waitForServer(sock)) << "cold server never came up";

    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(5);
    policy.maxAttempts = 200;
    policy.opDeadline = std::chrono::seconds(60);

    std::vector<std::vector<ResilientClient>> fleetByThread(threads);
    for (std::size_t t = 0; t < threads; ++t)
        for (std::size_t c = t; c < fleet; c += threads) {
            RetryPolicy p = policy;
            p.jitterSeed = 0x9e3779b97f4a7c15ULL + c; // de-correlate
            fleetByThread[t].push_back(
                ResilientClient::forUnix(sock, p));
        }

    std::atomic<std::size_t> mismatches{0};
    std::atomic<std::size_t> opFailures{0};
    auto runPass = [&](std::size_t iterations) {
        std::vector<std::thread> workers;
        for (std::size_t t = 0; t < threads; ++t)
            workers.emplace_back([&, t] {
                std::vector<model::Prediction> out;
                for (std::size_t it = 0; it < iterations; ++it)
                    for (auto &client : fleetByThread[t]) {
                        try {
                            client.predictManyInto(batch, out);
                        } catch (const std::exception &) {
                            ++opFailures;
                            continue;
                        }
                        if (out.size() != expected.size()) {
                            ++mismatches;
                            continue;
                        }
                        for (std::size_t i = 0; i < out.size(); ++i)
                            if (std::memcmp(&out[i].throughput,
                                            &expected[i].throughput,
                                            sizeof(double)) != 0)
                                ++mismatches;
                    }
            });
        for (auto &w : workers)
            w.join();
    };

    runPass(1);
    ASSERT_EQ(mismatches.load(), 0u) << "cold fleet diverged";
    ASSERT_EQ(opFailures.load(), 0u) << "cold fleet saw failures";

    // Two server-side saves so a previous generation (.g1) exists for
    // the fallback. Saves may fail transiently under injected chaos —
    // retry; what matters is that two eventually commit.
    {
        auto admin = ResilientClient::forUnix(sock, policy);
        int saves = 0;
        for (int tries = 0; saves < 2 && tries < 200; ++tries)
            if (admin.snapshot())
                ++saves;
        ASSERT_EQ(saves, 2) << "server never committed two snapshots";
    }

    // ---- phase 2: SIGKILL mid-traffic, tear the snapshot, respawn -
    std::thread chaos([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ASSERT_EQ(::kill(server, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(server, &status, 0), server);
        ASSERT_TRUE(WIFSIGNALED(status));

        // The kill "caught a save mid-write": replace the primary with
        // a torn prefix so only the generation walk can recover.
        std::FILE *f = std::fopen(snap.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("FACSNAP\ntorn-mid-write", f);
        std::fclose(f);

        server = spawnServerChild(sock, snap, /*warmLoad=*/true);
        ASSERT_GT(server, 0);
        EXPECT_TRUE(waitForServer(sock)) << "warm server never came up";
    });
    runPass(4); // the kill lands inside this pass
    chaos.join();

    // One more full pass with the warm server definitely up: any
    // client that finished pass 2 before the kill still holds a dead
    // socket here, so after this EVERY client has reconnected.
    runPass(1);

    EXPECT_EQ(mismatches.load(), 0u)
        << "predictions diverged across the crash";
    EXPECT_EQ(opFailures.load(), 0u)
        << "self-healing leaked a failure to a caller";

    // The healing really happened and is observable: clients
    // reconnected, and the warm restart fell back past the torn
    // primary (server-side counter over the wire, client counters
    // merged in by ResilientClient::stats()).
    std::uint64_t reconnects = 0, retried = 0;
    for (auto &perThread : fleetByThread)
        for (auto &client : perThread) {
            reconnects += client.selfHealStats().reconnects;
            retried += client.selfHealStats().retriedRequests;
        }
    EXPECT_GE(reconnects, fleet)
        << "every held connection died with the server";
    EXPECT_GE(retried, fleet * batch.size());

    auto admin = ResilientClient::forUnix(sock, policy);
    ServerStats s = admin.stats();
    EXPECT_GE(s.snapshotFallbacks, 1u)
        << "warm start did not use the generation fallback";
    EXPECT_EQ(s.drainSheds, 0u);

    ASSERT_EQ(::kill(server, SIGKILL), 0);
    ::waitpid(server, nullptr, 0);
    std::remove(sock.c_str());
    removeSnapshotGenerations(snap);
}

} // namespace
} // namespace facile::server
