/**
 * @file
 * Reference-simulator tests: steady-state throughput on blocks with
 * analytically known behavior, front-end mode selection, and basic
 * structural properties (determinism, positivity).
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "isa/builder.h"
#include "sim/pipeline.h"

namespace facile::sim {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

std::vector<Inst>
loopBody(std::vector<Inst> v)
{
    v.push_back(make(Mnemonic::DEC, {R(R15)}));
    v.push_back(backEdge(Cond::NE));
    return v;
}

TEST(Sim, DependenceChainLatency)
{
    // imul rax, rax: 3 cycles per iteration, exactly.
    auto blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    EXPECT_NEAR(measuredThroughput(blk, false), 3.0, 0.01);
}

TEST(Sim, PortBoundSqrt)
{
    // Three port-0-only µops with no loop-carried dependence (sqrtpd
    // reads only its source): 3 cycles per iteration.
    std::vector<Inst> insts = {
        make(Mnemonic::SQRTPD, {R(XMM0), R(XMM5)}),
        make(Mnemonic::SQRTPD, {R(XMM1), R(XMM5)}),
        make(Mnemonic::SQRTPD, {R(XMM2), R(XMM5)}),
    };
    EXPECT_NEAR(measuredThroughput(blockOf(insts), false), 3.0, 0.05);
}

TEST(Sim, IssueBoundNops)
{
    // 8 NOPs on SKL (issue width 4): 2 cycles per iteration as a loop
    // fed from the DSB... as unrolled, predecode also allows 2/iter.
    std::vector<Inst> insts(8, nop(1));
    EXPECT_NEAR(measuredThroughput(blockOf(insts), false), 2.0, 0.05);
}

TEST(Sim, LoadLatencyPointerChase)
{
    auto blk = blockOf({make(Mnemonic::MOV, {R(RAX), M(mem(RAX))})});
    EXPECT_NEAR(measuredThroughput(blk, false), 4.0, 0.05);
    auto icl = blockOf({make(Mnemonic::MOV, {R(RAX), M(mem(RAX))})},
                       UArch::ICL);
    EXPECT_NEAR(measuredThroughput(icl, false), 5.0, 0.05);
}

TEST(Sim, FrontEndModeSelection)
{
    // Loop on HSW -> LSD; on SKL -> DSB; unrolled -> legacy decode.
    auto body = loopBody({make(Mnemonic::ADD, {R(RAX), R(RBX)})});
    EXPECT_EQ(simulate(blockOf(body, UArch::HSW), true).feMode,
              SimResult::FeMode::Lsd);
    EXPECT_EQ(simulate(blockOf(body, UArch::SKL), true).feMode,
              SimResult::FeMode::Dsb);
    EXPECT_EQ(simulate(blockOf(body, UArch::SKL), false).feMode,
              SimResult::FeMode::Legacy);
}

TEST(Sim, JccErratumForcesLegacyDecode)
{
    std::vector<Inst> body = {nop(15), nop(15), backEdge()};
    auto blk = blockOf(body, UArch::SKL);
    ASSERT_TRUE(blk.touchesJccErratumBoundary());
    EXPECT_EQ(simulate(blk, true).feMode, SimResult::FeMode::Legacy);
    // Ice Lake is not affected.
    auto icl = blockOf(body, UArch::ICL);
    EXPECT_EQ(simulate(icl, true).feMode, SimResult::FeMode::Lsd);
}

TEST(Sim, LsdIterationBoundary)
{
    // A 6-µop loop on HSW (issue 4): LSD unrolls by 2 -> 1.5
    // cycles/iteration in steady state.
    auto body = loopBody({
        make(Mnemonic::ADD, {R(RAX), R(RBX)}),
        make(Mnemonic::ADD, {R(RCX), R(RBX)}),
        make(Mnemonic::ADD, {R(RDX), R(RBX)}),
        make(Mnemonic::ADD, {R(RSI), R(RBX)}),
        make(Mnemonic::ADD, {R(RDI), R(RBX)}),
    }); // 5 adds + fused dec/jnz = 6 fused µops
    auto blk = blockOf(body, UArch::HSW);
    ASSERT_EQ(blk.fusedUops(), 6);
    EXPECT_NEAR(measuredThroughput(blk, true), 1.5, 0.05);
}

TEST(Sim, DsbThirtyTwoByteRule)
{
    // Small DSB-fed loop on SKL: ceil(n/w) behavior for blocks < 32B.
    // 7 fused µops (6 adds + fused pair): ceil(7/6) = 2 cycles.
    auto body = loopBody({
        make(Mnemonic::ADD, {R(RAX), R(RBX)}),
        make(Mnemonic::ADD, {R(RCX), R(RBX)}),
        make(Mnemonic::ADD, {R(RDX), R(RBX)}),
        make(Mnemonic::ADD, {R(RSI), R(RBX)}),
        make(Mnemonic::ADD, {R(RDI), R(RBX)}),
        make(Mnemonic::ADD, {R(R8), R(RBX)}),
    });
    auto blk = blockOf(body, UArch::SKL);
    ASSERT_LT(blk.lengthBytes(), 32);
    ASSERT_EQ(blk.fusedUops(), 7);
    EXPECT_NEAR(measuredThroughput(blk, true), 2.0, 0.05);
}

TEST(Sim, MicrocodedDivIssuesOverMultipleCycles)
{
    auto blk = blockOf({make(Mnemonic::DIV, {R(ECX)})});
    double tp = measuredThroughput(blk, false);
    // Dependence chain through rax/rdx dominates: ~26 cycles.
    EXPECT_NEAR(tp, 26.0, 1.0);
}

TEST(Sim, DeterministicAcrossRuns)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {R(RAX), M(memIdx(RBX, RCX, 4, 8))}),
        make(Mnemonic::IMUL, {R(RDX), R(RAX)}),
        make(Mnemonic::MOV, {M(mem(RSI)), R(RDX)}),
    };
    auto blk = blockOf(insts);
    double a = measuredThroughput(blk, false);
    double b = measuredThroughput(blk, false);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(Sim, StoreThroughputLimitedByStoreDataPort)
{
    std::vector<Inst> stores = {
        make(Mnemonic::MOV, {M(mem(RBX, 0)), R(RAX)}),
        make(Mnemonic::MOV, {M(mem(RBX, 8)), R(RAX)}),
    };
    // SKL: one store-data port -> 2 cycles; ICL: two -> ~1 cycle.
    EXPECT_NEAR(measuredThroughput(blockOf(stores, UArch::SKL), true), 2.0,
                0.1);
    EXPECT_NEAR(measuredThroughput(blockOf(stores, UArch::ICL), true), 1.0,
                0.1);
}

TEST(Sim, MoveEliminationMakesMovFree)
{
    // A chain of movs + add: with elimination the chain collapses to
    // the add's 1 cycle; without (SNB) each mov adds latency.
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {R(RBX), R(RAX)}),
        make(Mnemonic::MOV, {R(RCX), R(RBX)}),
        make(Mnemonic::ADD, {R(RAX), R(RCX)}),
    };
    double skl = measuredThroughput(blockOf(insts, UArch::SKL), false);
    double snb = measuredThroughput(blockOf(insts, UArch::SNB), false);
    EXPECT_NEAR(skl, 1.0, 0.05);
    EXPECT_NEAR(snb, 3.0, 0.1);
}

TEST(Sim, EmptyBlockReturnsZero)
{
    bb::BasicBlock blk;
    blk.arch = UArch::SKL;
    EXPECT_DOUBLE_EQ(measuredThroughput(blk, false), 0.0);
}

} // namespace
} // namespace facile::sim
