/**
 * @file
 * Combination-logic tests: equations (1)-(3), bottleneck identification
 * and tie-breaking, ablation configurations (Table 3 variants), and the
 * counterfactual idealization API (Table 4).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "bb/basic_block.h"
#include "facile/predictor.h"
#include "isa/builder.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

double
value(const Prediction &p, Component c)
{
    return p.componentValue[static_cast<int>(c)];
}

TEST(Predictor, TpuIsMaxOfComponents)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction p = predictUnrolled(blk);
    double maxVal = 0;
    for (int i = 0; i < kNumComponents; ++i)
        if (!std::isnan(p.componentValue[i]))
            maxVal = std::max(maxVal, p.componentValue[i]);
    EXPECT_DOUBLE_EQ(p.throughput, maxVal);
    EXPECT_NEAR(p.throughput, 3.0, 1e-6); // imul chain
}

TEST(Predictor, TpuNeverUsesDsbOrLsd)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::ADD, {R(RAX), R(RBX)})});
    Prediction p = predictUnrolled(blk);
    EXPECT_TRUE(std::isnan(value(p, Component::DSB)));
    EXPECT_TRUE(std::isnan(value(p, Component::LSD)));
    EXPECT_FALSE(std::isnan(value(p, Component::Predec)));
    EXPECT_FALSE(std::isnan(value(p, Component::Dec)));
}

TEST(Predictor, TplFrontEndSelectsLsdWhenEnabled)
{
    // HSW has the LSD enabled; a small loop is LSD-fed.
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              backEdge()};
    Prediction p = predictLoop(blockOf(body, UArch::HSW));
    EXPECT_FALSE(std::isnan(value(p, Component::LSD)));
    EXPECT_TRUE(std::isnan(value(p, Component::DSB)));
    EXPECT_TRUE(std::isnan(value(p, Component::Predec)));
}

TEST(Predictor, TplFrontEndSelectsDsbOnSkylake)
{
    // SKL: LSD disabled (SKL150) -> DSB, provided the JCC erratum does
    // not bite (branch within the first 32 bytes here).
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              backEdge()};
    bb::BasicBlock blk = blockOf(body, UArch::SKL);
    ASSERT_FALSE(blk.touchesJccErratumBoundary());
    Prediction p = predictLoop(blk);
    EXPECT_FALSE(std::isnan(value(p, Component::DSB)));
    EXPECT_TRUE(std::isnan(value(p, Component::LSD)));
}

TEST(Predictor, TplJccErratumFallsBackToLegacyDecode)
{
    // Branch ending exactly on the 32-byte boundary triggers the
    // erratum on SKL: Predec/Dec are used instead of DSB/LSD.
    std::vector<Inst> body = {nop(15), nop(15), backEdge()};
    bb::BasicBlock blk = blockOf(body, UArch::SKL);
    ASSERT_TRUE(blk.touchesJccErratumBoundary());
    Prediction p = predictLoop(blk);
    EXPECT_FALSE(std::isnan(value(p, Component::Predec)));
    EXPECT_FALSE(std::isnan(value(p, Component::Dec)));
    EXPECT_TRUE(std::isnan(value(p, Component::DSB)));

    // The same block on ICL (no erratum) uses the LSD or DSB.
    Prediction pIcl = predictLoop(blockOf(body, UArch::ICL));
    EXPECT_TRUE(std::isnan(value(pIcl, Component::Predec)));
}

TEST(Predictor, TplLargeLoopFallsOutOfLsd)
{
    // More µops than the IDQ holds: DSB takes over even on HSW.
    std::vector<Inst> body(60, make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    body.push_back(backEdge());
    Prediction p = predictLoop(blockOf(body, UArch::HSW));
    EXPECT_TRUE(std::isnan(value(p, Component::LSD)));
    EXPECT_FALSE(std::isnan(value(p, Component::DSB)));
}

TEST(Predictor, BottleneckTieBreakIsFrontEndFirst)
{
    // Construct a block where Predec and Ports tie; priority order
    // Predec > Dec > Issue > Ports > Precedence must pick Predec.
    bb::BasicBlock blk = blockOf({nop(4), nop(4), nop(4), nop(4)});
    Prediction p = predictUnrolled(blk);
    ASSERT_FALSE(p.bottlenecks.empty());
    for (std::size_t i = 1; i < p.bottlenecks.size(); ++i)
        EXPECT_LT(static_cast<int>(p.bottlenecks[0]),
                  static_cast<int>(p.bottlenecks[i]));
    EXPECT_EQ(p.primaryBottleneck, p.bottlenecks[0]);
}

TEST(Predictor, AblationOnlyX)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)}),
                                  make(Mnemonic::ADD, {R(RBX), R(RCX)})});
    Prediction full = predictUnrolled(blk);
    Prediction onlyPorts =
        predictUnrolled(blk, ModelConfig::only(Component::Ports));
    EXPECT_LE(onlyPorts.throughput, full.throughput);
    EXPECT_FALSE(std::isnan(value(onlyPorts, Component::Ports)));
    EXPECT_TRUE(std::isnan(value(onlyPorts, Component::Predec)));
    EXPECT_TRUE(std::isnan(value(onlyPorts, Component::Precedence)));
}

TEST(Predictor, AblationWithoutX)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction without =
        predictUnrolled(blk, ModelConfig::without(Component::Precedence));
    EXPECT_TRUE(std::isnan(value(without, Component::Precedence)));
    EXPECT_LT(without.throughput, 3.0);
}

TEST(Predictor, SimpleVariantsSwapIn)
{
    // Dense block where full Predec exceeds SimplePredec.
    std::vector<Inst> body(16, nop(2));
    bb::BasicBlock blk = blockOf(body);
    ModelConfig simple;
    simple.simplePredec = true;
    Prediction fullP = predictUnrolled(blk);
    Prediction simpleP = predictUnrolled(blk, simple);
    EXPECT_GT(value(fullP, Component::Predec),
              value(simpleP, Component::Predec));
}

TEST(Predictor, IdealizedRemovesOneComponent)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction p = predictUnrolled(blk);
    ASSERT_EQ(p.primaryBottleneck, Component::Precedence);
    double ideal = p.idealized(Component::Precedence);
    EXPECT_LT(ideal, p.throughput);
    // Idealizing a non-bottleneck changes nothing.
    EXPECT_DOUBLE_EQ(p.idealized(Component::Dec), p.throughput);
}

TEST(Predictor, PortsInterpretabilityPayload)
{
    // sqrtpd reads only its source: three of them with distinct
    // destinations are port-0-bound with no dependence chain.
    std::vector<Inst> insts = {
        make(Mnemonic::SQRTPD, {R(XMM0), R(XMM5)}),
        make(Mnemonic::SQRTPD, {R(XMM1), R(XMM5)}),
        make(Mnemonic::SQRTPD, {R(XMM2), R(XMM5)}),
    };
    Prediction p = predictUnrolled(blockOf(insts));
    EXPECT_EQ(p.primaryBottleneck, Component::Ports);
    EXPECT_NE(p.contendedPorts, 0);
    EXPECT_EQ(p.contendingInsts.size(), 3u);
}

TEST(Predictor, PrecedenceInterpretabilityPayload)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction p = predictUnrolled(blk);
    ASSERT_FALSE(p.criticalChain.empty());
    EXPECT_EQ(p.criticalChain[0], 0);
}

TEST(Predictor, LoopDominatedByLsdOverIssue)
{
    // Paper 4.7: LSD dominates Issue in TPL when the LSD is active.
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              make(Mnemonic::ADD, {R(RCX), R(RDX)}),
                              backEdge()};
    bb::BasicBlock blk = blockOf(body, UArch::HSW);
    Prediction p = predictLoop(blk);
    EXPECT_GE(value(p, Component::LSD), value(p, Component::Issue) - 1e-12);
}

TEST(Predictor, ComponentNames)
{
    EXPECT_EQ(componentName(Component::Predec), "Predec");
    EXPECT_EQ(componentName(Component::Precedence), "Precedence");
    EXPECT_EQ(componentName(Component::LSD), "LSD");
}

TEST(Predictor, BottleneckPriorityPinsAllSevenComponents)
{
    // The documented front-end-first order over the FULL component set
    // — including the µop-delivery components DSB and LSD, which rank
    // after the legacy decode pipe and before the back end. This is a
    // regression pin: the header once documented only five components.
    const auto &prio = bottleneckPriority();
    ASSERT_EQ(prio.size(), static_cast<std::size_t>(kNumComponents));
    EXPECT_EQ(prio[0], Component::Predec);
    EXPECT_EQ(prio[1], Component::Dec);
    EXPECT_EQ(prio[2], Component::DSB);
    EXPECT_EQ(prio[3], Component::LSD);
    EXPECT_EQ(prio[4], Component::Issue);
    EXPECT_EQ(prio[5], Component::Ports);
    EXPECT_EQ(prio[6], Component::Precedence);
}

TEST(Predictor, TieBreakOrderHoldsOnEveryArch)
{
    // Per-arch regression for the tie-break: over a seeded block set on
    // every microarchitecture and both notions, bottlenecks must be
    // listed in bottleneckPriority() order, primaryBottleneck must be
    // the first of them, and every listed component must actually
    // attain the throughput.
    const auto &prio = bottleneckPriority();
    auto rank = [&](Component c) {
        for (std::size_t i = 0; i < prio.size(); ++i)
            if (prio[i] == c)
                return i;
        return prio.size();
    };

    // A mix that produces ties: dense nop streams (front-end bound),
    // plus µop-delivery-vs-issue ties on small loops.
    const std::vector<std::vector<Inst>> bodies = {
        {nop(4), nop(4), nop(4), nop(4)},
        {make(Mnemonic::ADD, {R(RAX), R(RBX)}), backEdge()},
        {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
         make(Mnemonic::ADD, {R(RCX), R(RDX)}),
         make(Mnemonic::ADD, {R(RSI), R(RDI)}),
         make(Mnemonic::ADD, {R(R8), R(R9)}), backEdge()},
        {nop(15), nop(15), backEdge()}, // JCC-erratum layout on SKL
        {make(Mnemonic::IMUL, {R(RAX), R(RAX)}), backEdge()},
    };

    for (uarch::UArch arch : uarch::allUArchs()) {
        for (const auto &body : bodies) {
            for (bool loop : {false, true}) {
                bb::BasicBlock blk = bb::analyze(body, arch);
                Prediction p = predict(blk, loop);
                ASSERT_FALSE(p.bottlenecks.empty())
                    << uarch::config(arch).abbrev;
                EXPECT_EQ(p.primaryBottleneck, p.bottlenecks.front())
                    << uarch::config(arch).abbrev;
                for (std::size_t i = 1; i < p.bottlenecks.size(); ++i)
                    EXPECT_LT(rank(p.bottlenecks[i - 1]),
                              rank(p.bottlenecks[i]))
                        << uarch::config(arch).abbrev;
                for (Component c : p.bottlenecks) {
                    const double v = value(p, c);
                    EXPECT_FALSE(std::isnan(v));
                    EXPECT_GE(v, p.throughput - 1e-9);
                }
            }
        }
    }
}

TEST(Predictor, DsbIssueTieBreaksTowardDsb)
{
    // On SKL (no LSD) a 4-add loop issues 4 fused µops/cycle... build a
    // loop where the DSB bound equals the Issue bound exactly; the
    // front-end-first rule must pick DSB as primary. 6 single-µop adds
    // + fused cmp/jcc = 7 fused µops: DSB (width 6, block >= 32B would
    // divide; here ceil applies for short blocks) vs Issue (width 4).
    // Rather than hardcode widths, scan small loops for an exact tie on
    // each arch and assert the winner whenever one occurs.
    int tiesSeen = 0;
    const Reg dests[] = {RAX,     RCX,     RDX,     RSI,
                         RDI,     R8,      R9,      gpr(8, 10),
                         gpr(8, 11), gpr(8, 12), gpr(8, 13), gpr(8, 14)};
    for (uarch::UArch arch : uarch::allUArchs()) {
        for (int nAdds = 1; nAdds <= 12; ++nAdds) {
            // Independent adds (rotating destinations) keep the
            // dependence bound low so the front end can tie with Issue.
            std::vector<Inst> body;
            for (int i = 0; i < nAdds; ++i)
                body.push_back(
                    make(Mnemonic::ADD, {R(dests[i]), R(RBX)}));
            body.push_back(backEdge());
            bb::BasicBlock blk = bb::analyze(body, arch);
            Prediction p = predictLoop(blk);
            const double dsbV = value(p, Component::DSB);
            const double lsdV = value(p, Component::LSD);
            const double issueV = value(p, Component::Issue);
            if (!std::isnan(dsbV) && dsbV == issueV &&
                p.throughput == dsbV) {
                EXPECT_EQ(p.primaryBottleneck, Component::DSB)
                    << uarch::config(arch).abbrev << " nAdds " << nAdds;
                ++tiesSeen;
            }
            if (!std::isnan(lsdV) && lsdV == issueV &&
                p.throughput == lsdV) {
                EXPECT_EQ(p.primaryBottleneck, Component::LSD)
                    << uarch::config(arch).abbrev << " nAdds " << nAdds;
                ++tiesSeen;
            }
        }
    }
    // The sweep must actually produce µop-delivery/issue ties.
    EXPECT_GT(tiesSeen, 0);
}

} // namespace
} // namespace facile::model
