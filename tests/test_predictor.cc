/**
 * @file
 * Combination-logic tests: equations (1)-(3), bottleneck identification
 * and tie-breaking, ablation configurations (Table 3 variants), and the
 * counterfactual idealization API (Table 4).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "bb/basic_block.h"
#include "facile/predictor.h"
#include "isa/builder.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

double
value(const Prediction &p, Component c)
{
    return p.componentValue[static_cast<int>(c)];
}

TEST(Predictor, TpuIsMaxOfComponents)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction p = predictUnrolled(blk);
    double maxVal = 0;
    for (int i = 0; i < kNumComponents; ++i)
        if (!std::isnan(p.componentValue[i]))
            maxVal = std::max(maxVal, p.componentValue[i]);
    EXPECT_DOUBLE_EQ(p.throughput, maxVal);
    EXPECT_NEAR(p.throughput, 3.0, 1e-6); // imul chain
}

TEST(Predictor, TpuNeverUsesDsbOrLsd)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::ADD, {R(RAX), R(RBX)})});
    Prediction p = predictUnrolled(blk);
    EXPECT_TRUE(std::isnan(value(p, Component::DSB)));
    EXPECT_TRUE(std::isnan(value(p, Component::LSD)));
    EXPECT_FALSE(std::isnan(value(p, Component::Predec)));
    EXPECT_FALSE(std::isnan(value(p, Component::Dec)));
}

TEST(Predictor, TplFrontEndSelectsLsdWhenEnabled)
{
    // HSW has the LSD enabled; a small loop is LSD-fed.
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              backEdge()};
    Prediction p = predictLoop(blockOf(body, UArch::HSW));
    EXPECT_FALSE(std::isnan(value(p, Component::LSD)));
    EXPECT_TRUE(std::isnan(value(p, Component::DSB)));
    EXPECT_TRUE(std::isnan(value(p, Component::Predec)));
}

TEST(Predictor, TplFrontEndSelectsDsbOnSkylake)
{
    // SKL: LSD disabled (SKL150) -> DSB, provided the JCC erratum does
    // not bite (branch within the first 32 bytes here).
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              backEdge()};
    bb::BasicBlock blk = blockOf(body, UArch::SKL);
    ASSERT_FALSE(blk.touchesJccErratumBoundary());
    Prediction p = predictLoop(blk);
    EXPECT_FALSE(std::isnan(value(p, Component::DSB)));
    EXPECT_TRUE(std::isnan(value(p, Component::LSD)));
}

TEST(Predictor, TplJccErratumFallsBackToLegacyDecode)
{
    // Branch ending exactly on the 32-byte boundary triggers the
    // erratum on SKL: Predec/Dec are used instead of DSB/LSD.
    std::vector<Inst> body = {nop(15), nop(15), backEdge()};
    bb::BasicBlock blk = blockOf(body, UArch::SKL);
    ASSERT_TRUE(blk.touchesJccErratumBoundary());
    Prediction p = predictLoop(blk);
    EXPECT_FALSE(std::isnan(value(p, Component::Predec)));
    EXPECT_FALSE(std::isnan(value(p, Component::Dec)));
    EXPECT_TRUE(std::isnan(value(p, Component::DSB)));

    // The same block on ICL (no erratum) uses the LSD or DSB.
    Prediction pIcl = predictLoop(blockOf(body, UArch::ICL));
    EXPECT_TRUE(std::isnan(value(pIcl, Component::Predec)));
}

TEST(Predictor, TplLargeLoopFallsOutOfLsd)
{
    // More µops than the IDQ holds: DSB takes over even on HSW.
    std::vector<Inst> body(60, make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    body.push_back(backEdge());
    Prediction p = predictLoop(blockOf(body, UArch::HSW));
    EXPECT_TRUE(std::isnan(value(p, Component::LSD)));
    EXPECT_FALSE(std::isnan(value(p, Component::DSB)));
}

TEST(Predictor, BottleneckTieBreakIsFrontEndFirst)
{
    // Construct a block where Predec and Ports tie; priority order
    // Predec > Dec > Issue > Ports > Precedence must pick Predec.
    bb::BasicBlock blk = blockOf({nop(4), nop(4), nop(4), nop(4)});
    Prediction p = predictUnrolled(blk);
    ASSERT_FALSE(p.bottlenecks.empty());
    for (std::size_t i = 1; i < p.bottlenecks.size(); ++i)
        EXPECT_LT(static_cast<int>(p.bottlenecks[0]),
                  static_cast<int>(p.bottlenecks[i]));
    EXPECT_EQ(p.primaryBottleneck, p.bottlenecks[0]);
}

TEST(Predictor, AblationOnlyX)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)}),
                                  make(Mnemonic::ADD, {R(RBX), R(RCX)})});
    Prediction full = predictUnrolled(blk);
    Prediction onlyPorts =
        predictUnrolled(blk, ModelConfig::only(Component::Ports));
    EXPECT_LE(onlyPorts.throughput, full.throughput);
    EXPECT_FALSE(std::isnan(value(onlyPorts, Component::Ports)));
    EXPECT_TRUE(std::isnan(value(onlyPorts, Component::Predec)));
    EXPECT_TRUE(std::isnan(value(onlyPorts, Component::Precedence)));
}

TEST(Predictor, AblationWithoutX)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction without =
        predictUnrolled(blk, ModelConfig::without(Component::Precedence));
    EXPECT_TRUE(std::isnan(value(without, Component::Precedence)));
    EXPECT_LT(without.throughput, 3.0);
}

TEST(Predictor, SimpleVariantsSwapIn)
{
    // Dense block where full Predec exceeds SimplePredec.
    std::vector<Inst> body(16, nop(2));
    bb::BasicBlock blk = blockOf(body);
    ModelConfig simple;
    simple.simplePredec = true;
    Prediction fullP = predictUnrolled(blk);
    Prediction simpleP = predictUnrolled(blk, simple);
    EXPECT_GT(value(fullP, Component::Predec),
              value(simpleP, Component::Predec));
}

TEST(Predictor, IdealizedRemovesOneComponent)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction p = predictUnrolled(blk);
    ASSERT_EQ(p.primaryBottleneck, Component::Precedence);
    double ideal = p.idealized(Component::Precedence);
    EXPECT_LT(ideal, p.throughput);
    // Idealizing a non-bottleneck changes nothing.
    EXPECT_DOUBLE_EQ(p.idealized(Component::Dec), p.throughput);
}

TEST(Predictor, PortsInterpretabilityPayload)
{
    // sqrtpd reads only its source: three of them with distinct
    // destinations are port-0-bound with no dependence chain.
    std::vector<Inst> insts = {
        make(Mnemonic::SQRTPD, {R(XMM0), R(XMM5)}),
        make(Mnemonic::SQRTPD, {R(XMM1), R(XMM5)}),
        make(Mnemonic::SQRTPD, {R(XMM2), R(XMM5)}),
    };
    Prediction p = predictUnrolled(blockOf(insts));
    EXPECT_EQ(p.primaryBottleneck, Component::Ports);
    EXPECT_NE(p.contendedPorts, 0);
    EXPECT_EQ(p.contendingInsts.size(), 3u);
}

TEST(Predictor, PrecedenceInterpretabilityPayload)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    Prediction p = predictUnrolled(blk);
    ASSERT_FALSE(p.criticalChain.empty());
    EXPECT_EQ(p.criticalChain[0], 0);
}

TEST(Predictor, LoopDominatedByLsdOverIssue)
{
    // Paper 4.7: LSD dominates Issue in TPL when the LSD is active.
    std::vector<Inst> body = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                              make(Mnemonic::ADD, {R(RCX), R(RDX)}),
                              backEdge()};
    bb::BasicBlock blk = blockOf(body, UArch::HSW);
    Prediction p = predictLoop(blk);
    EXPECT_GE(value(p, Component::LSD), value(p, Component::Issue) - 1e-12);
}

TEST(Predictor, ComponentNames)
{
    EXPECT_EQ(componentName(Component::Predec), "Predec");
    EXPECT_EQ(componentName(Component::Precedence), "Precedence");
    EXPECT_EQ(componentName(Component::LSD), "LSD");
}

} // namespace
} // namespace facile::model
