/**
 * @file
 * Port-contention model tests: the pairwise heuristic of section 4.8,
 * the exact subset bound, and the property that both agree on the
 * generated benchmark suite (as the paper reports for BHive).
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "facile/ports.h"
#include "isa/builder.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

TEST(Ports, SingleAluUopIsFractional)
{
    // One ALU µop on p0156: 1/4 cycles per iteration.
    bb::BasicBlock blk = blockOf({make(Mnemonic::ADD, {R(RAX), R(RBX)})});
    EXPECT_DOUBLE_EQ(ports(blk).throughput, 0.25);
}

TEST(Ports, SinglePortSaturation)
{
    // Three FP divides all require port 0: 3 cycles per iteration.
    std::vector<Inst> insts(3, make(Mnemonic::DIVSD, {R(XMM0), R(XMM1)}));
    PortsResult r = ports(blockOf(insts));
    EXPECT_DOUBLE_EQ(r.throughput, 3.0);
    EXPECT_EQ(r.bottleneckPorts, 1); // port 0 only
    EXPECT_EQ(r.contendingInsts.size(), 3u);
}

TEST(Ports, PairwiseUnionCatchesSharedPressure)
{
    // One shuffle (p5) alone gives 1.0 and five ALU µops (p0156) alone
    // give 1.25, but together all six compete for p0156: the pairwise
    // union finds 6/4 = 1.5.
    std::vector<Inst> insts = {
        make(Mnemonic::SHUFPS, {R(XMM0), R(XMM1), I(0, 1)}), // p5
        make(Mnemonic::ADD, {R(RAX), R(RBX)}),               // p0156
        make(Mnemonic::ADD, {R(RCX), R(RDX)}),
        make(Mnemonic::ADD, {R(RSI), R(RDI)}),
        make(Mnemonic::ADD, {R(R8), R(R9)}),
        make(Mnemonic::ADD, {R(R10), R(R11)}),
    };
    PortsResult r = ports(blockOf(insts));
    EXPECT_DOUBLE_EQ(r.throughput, 1.5);
}

TEST(Ports, EliminatedUopsExcluded)
{
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {R(RAX), R(RBX)}), // eliminated on SKL
        make(Mnemonic::XOR, {R(RCX), R(RCX)}), // zero idiom
        nop(1),
    };
    EXPECT_DOUBLE_EQ(ports(blockOf(insts)).throughput, 0.0);
}

TEST(Ports, MacroFusedBranchCountsOnce)
{
    std::vector<Inst> insts = {
        make(Mnemonic::CMP, {R(RAX), R(RBX)}),
        makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}),
    };
    // One fused µop on p06: 1/2.
    EXPECT_DOUBLE_EQ(ports(blockOf(insts)).throughput, 0.5);
}

TEST(Ports, StoreUopsOnDedicatedPorts)
{
    // SKL: store data on p4 only: 3 stores -> 3 STD µops -> 3.0.
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {M(mem(RBX, 0)), R(RAX)}),
        make(Mnemonic::MOV, {M(mem(RBX, 8)), R(RCX)}),
        make(Mnemonic::MOV, {M(mem(RBX, 16)), R(RDX)}),
    };
    EXPECT_DOUBLE_EQ(ports(blockOf(insts)).throughput, 3.0);
    // ICL has two store-data ports: 1.5.
    EXPECT_DOUBLE_EQ(ports(blockOf(insts, UArch::ICL)).throughput, 1.5);
}

TEST(Ports, ExactMatchesHandComputedTriple)
{
    // µops on {p0}, {p1}, {p0,p1}: subsets give max(2/1? ...) —
    // {p0}: 1/1, {p01}: 3/2 = 1.5.
    std::vector<Inst> insts = {
        make(Mnemonic::DIVSD, {R(XMM0), R(XMM1)}),   // p0 (SKL)
        make(Mnemonic::IMUL, {R(RAX), R(RBX)}),      // p1
        make(Mnemonic::MULSD, {R(XMM2), R(XMM3)}),   // p01
    };
    PortsResult heur = ports(blockOf(insts));
    PortsResult exact = portsExact(blockOf(insts));
    EXPECT_DOUBLE_EQ(exact.throughput, 1.5);
    EXPECT_DOUBLE_EQ(heur.throughput, exact.throughput);
}

TEST(Ports, HeuristicNeverExceedsExact)
{
    // The heuristic maximizes over a subset of the port combinations,
    // so heuristic <= exact always.
    const auto &suite = facile::bhive::generateSuite(99, 8);
    for (const auto &b : suite) {
        bb::BasicBlock blk = bb::analyze(b.bytesU, UArch::RKL);
        EXPECT_LE(ports(blk).throughput,
                  portsExact(blk).throughput + 1e-12)
            << b.id;
    }
}

class PortsSuiteParity : public ::testing::TestWithParam<facile::uarch::UArch>
{
};

INSTANTIATE_TEST_SUITE_P(UArch, PortsSuiteParity,
                         ::testing::ValuesIn(facile::uarch::allUArchs()),
                         [](const auto &info) {
                             return facile::uarch::config(info.param).abbrev;
                         });

TEST_P(PortsSuiteParity, HeuristicEqualsExactOnSuite)
{
    // Paper section 4.8: the pairwise heuristic yields the same bound
    // as the exact linear program on all BHive benchmarks. Verify the
    // analogous property on our generated suite for every µarch.
    const auto &suite = facile::bhive::generateSuite(20231020, 10);
    for (const auto &b : suite) {
        for (const auto *bytes : {&b.bytesU, &b.bytesL}) {
            bb::BasicBlock blk = bb::analyze(*bytes, GetParam());
            double h = ports(blk).throughput;
            double e = portsExact(blk).throughput;
            EXPECT_NEAR(h, e, 1e-9) << b.id;
        }
    }
}

} // namespace
} // namespace facile::model
