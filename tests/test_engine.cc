/**
 * @file
 * PredictionEngine tests: batch results are bit-identical to the serial
 * predictor for 1 and N worker threads, cache hits return the same
 * Prediction (bottlenecks and critical chain included) as cold calls,
 * stats counters add up, and malformed blocks follow the throughput-0
 * crash protocol.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>

#include "bhive/generator.h"
#include "engine/engine.h"
#include "facile/component.h"
#include "facile/predictor.h"

namespace facile::engine {
namespace {

using model::ModelConfig;
using model::Prediction;

const std::vector<bhive::Benchmark> &
suite()
{
    static const auto s = bhive::generateSuite(99, 4);
    return s;
}

std::vector<Request>
makeBatch(bool withConfigs = false)
{
    std::vector<Request> batch;
    for (const auto &b : suite()) {
        batch.push_back({b.bytesU, uarch::UArch::SKL, false, {}});
        batch.push_back({b.bytesL, uarch::UArch::SKL, true, {}});
        batch.push_back({b.bytesL, uarch::UArch::RKL, true, {}});
        // Full-payload requests exercise the eager explain path and its
        // separate prediction-cache entries.
        batch.push_back({b.bytesL, uarch::UArch::SKL, true, {},
                         model::Payload::Full});
        if (withConfigs)
            batch.push_back({b.bytesU, uarch::UArch::SKL, false,
                             ModelConfig::without(
                                 model::Component::Ports)});
    }
    return batch;
}

::testing::AssertionResult
bitIdentical(const Prediction &a, const Prediction &b)
{
    if (std::memcmp(&a.throughput, &b.throughput, sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "throughput " << a.throughput << " vs " << b.throughput;
    // memcmp over the array keeps NaN markers comparable.
    if (std::memcmp(a.componentValue.data(), b.componentValue.data(),
                    sizeof(double) * a.componentValue.size()) != 0)
        return ::testing::AssertionFailure() << "componentValue differs";
    if (a.bottlenecks != b.bottlenecks)
        return ::testing::AssertionFailure() << "bottlenecks differ";
    if (a.primaryBottleneck != b.primaryBottleneck)
        return ::testing::AssertionFailure() << "primaryBottleneck differs";
    if (a.criticalChain != b.criticalChain)
        return ::testing::AssertionFailure() << "criticalChain differs";
    if (a.contendedPorts != b.contendedPorts)
        return ::testing::AssertionFailure() << "contendedPorts differ";
    if (a.contendingInsts != b.contendingInsts)
        return ::testing::AssertionFailure() << "contendingInsts differ";
    return ::testing::AssertionSuccess();
}

Prediction
serialPredict(const Request &r)
{
    // Match the request's payload depth: engine requests default to the
    // cheap bound-only path, so the serial oracle must too.
    model::PredictScratch scratch;
    return model::predict(bb::analyze(r.bytes, r.arch), r.loop, r.config,
                          scratch, r.payload);
}

TEST(Engine, BatchMatchesSerialOneWorker)
{
    PredictionEngine::Options opts;
    opts.numThreads = 1;
    PredictionEngine eng(opts);

    auto batch = makeBatch(true);
    auto out = eng.predictBatch(batch);
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(batch[i])))
            << "request " << i;
}

TEST(Engine, BatchMatchesSerialManyWorkers)
{
    PredictionEngine::Options opts;
    opts.numThreads = 8;
    PredictionEngine eng(opts);

    auto batch = makeBatch(true);
    auto out = eng.predictBatch(batch);
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(batch[i])))
            << "request " << i;
}

TEST(Engine, CacheHitEqualsColdCall)
{
    PredictionEngine::Options opts;
    opts.numThreads = 2;
    PredictionEngine eng(opts);

    auto batch = makeBatch();
    BatchStats cold, warm;
    auto first = eng.predictBatch(batch, &cold);
    auto second = eng.predictBatch(batch, &warm);

    EXPECT_EQ(cold.predictionCacheHits, 0u);
    EXPECT_EQ(warm.predictionCacheHits, batch.size());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(bitIdentical(first[i], second[i])) << "request " << i;
}

TEST(Engine, AnalysisCacheSharesBlocksAcrossNotions)
{
    // The same bytes under TPU and TPL decode once: the second request
    // of each pair hits the analysis cache even though the prediction
    // key differs.
    PredictionEngine::Options opts;
    opts.numThreads = 1;
    PredictionEngine eng(opts);

    const auto &b = suite().front();
    BatchStats stats;
    eng.predictOne({b.bytesL, uarch::UArch::SKL, false, {}}, &stats);
    eng.predictOne({b.bytesL, uarch::UArch::SKL, true, {}}, &stats);
    EXPECT_EQ(stats.analyzed, 1u);
    EXPECT_EQ(stats.analysisCacheHits, 1u);
    EXPECT_EQ(stats.predictionCacheHits, 0u);
}

TEST(Engine, CacheDisabledStillMatchesSerial)
{
    PredictionEngine::Options opts;
    opts.numThreads = 4;
    opts.cacheEnabled = false;
    PredictionEngine eng(opts);

    auto batch = makeBatch();
    BatchStats stats;
    auto out = eng.predictBatch(batch, &stats);
    EXPECT_EQ(stats.predictionCacheHits, 0u);
    EXPECT_EQ(stats.analyzed, batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(batch[i])))
            << "request " << i;
}

TEST(Engine, PerArchCacheKeysDoNotCollide)
{
    // Identical bytes on two arches must produce the arch-specific
    // predictions, not a shared cache entry.
    PredictionEngine::Options opts;
    opts.numThreads = 1;
    PredictionEngine eng(opts);

    const auto &b = suite().front();
    auto skl = eng.predictOne({b.bytesL, uarch::UArch::SKL, true, {}});
    auto rkl = eng.predictOne({b.bytesL, uarch::UArch::RKL, true, {}});
    auto skl2 = eng.predictOne({b.bytesL, uarch::UArch::SKL, true, {}});
    EXPECT_TRUE(bitIdentical(
        skl, serialPredict({b.bytesL, uarch::UArch::SKL, true, {}})));
    EXPECT_TRUE(bitIdentical(
        rkl, serialPredict({b.bytesL, uarch::UArch::RKL, true, {}})));
    EXPECT_TRUE(bitIdentical(skl, skl2));
}

TEST(Engine, MalformedBlockYieldsZeroThroughput)
{
    PredictionEngine::Options opts;
    opts.numThreads = 2;
    PredictionEngine eng(opts);

    std::vector<Request> batch;
    batch.push_back({{0x0f, 0xff, 0xff}, uarch::UArch::SKL, false, {}});
    batch.push_back({suite().front().bytesU, uarch::UArch::SKL, false, {}});
    auto out = eng.predictBatch(batch);
    EXPECT_EQ(out[0].throughput, 0.0);
    EXPECT_GT(out[1].throughput, 0.0);
}

TEST(Engine, StatsCountersAddUp)
{
    PredictionEngine::Options opts;
    opts.numThreads = 3;
    PredictionEngine eng(opts);

    auto batch = makeBatch();
    BatchStats stats;
    eng.predictBatch(batch, &stats);
    eng.predictBatch(batch, &stats);
    EXPECT_EQ(stats.requests, 2 * batch.size());
    EXPECT_EQ(stats.predictionCacheHits, batch.size());
    // Every block was decoded at most once.
    EXPECT_LE(stats.analyzed, batch.size());
}

TEST(Engine, ClearCachesForcesReanalysis)
{
    PredictionEngine::Options opts;
    opts.numThreads = 1;
    PredictionEngine eng(opts);

    const auto &b = suite().front();
    Request r{b.bytesU, uarch::UArch::SKL, false, {}};
    auto cold = eng.predictOne(r);
    eng.clearCaches();
    BatchStats stats;
    auto recold = eng.predictOne(r, &stats);
    EXPECT_EQ(stats.predictionCacheHits, 0u);
    EXPECT_EQ(stats.analyzed, 1u);
    EXPECT_TRUE(bitIdentical(cold, recold));
}

TEST(Engine, EvictionKeepsSteadyStateHitRateAtCapacity)
{
    // A working set ~1.5x one generation's aggregate capacity, replayed
    // repeatedly. Under the old epoch eviction (clear() on overflow) a
    // shard past its bound dropped its entire hot set every cycle, so
    // steady-state hits collapsed; two-generation eviction keeps the
    // working set circulating between generations.
    PredictionEngine::Options opts;
    opts.numThreads = 1;
    opts.maxEntriesPerShard = 12; // 16 shards -> one generation ~192
    PredictionEngine eng(opts);

    // Distinct blocks from a private suite (both notions' bytes).
    std::vector<Request> batch;
    {
        auto blocks = bhive::generateSuite(123, 16);
        std::set<std::vector<std::uint8_t>> seen;
        for (const auto &b : blocks) {
            for (const auto *bytes : {&b.bytesU, &b.bytesL}) {
                if (batch.size() >= 192)
                    break;
                if (seen.insert(*bytes).second)
                    batch.push_back(
                        {*bytes, uarch::UArch::SKL, false, {}});
            }
        }
    }
    ASSERT_GE(batch.size(), 160u);

    eng.predictBatch(batch); // cold fill
    eng.predictBatch(batch); // reach steady state
    eng.predictBatch(batch);
    BatchStats warm;
    eng.predictBatch(batch, &warm);
    // Measured on this suite: 28% with the old epoch eviction, 94%
    // with two-generation eviction.
    EXPECT_GE(warm.predictionCacheHits, batch.size() * 6 / 10)
        << "steady-state hit rate collapsed after cache overflow";
}

TEST(Engine, EvictionStillBoundsCacheGrowth)
{
    // A one-shot scan much larger than capacity must still be answered
    // correctly (eviction never corrupts results, only forgets).
    PredictionEngine::Options opts;
    opts.numThreads = 2;
    opts.maxEntriesPerShard = 4;
    PredictionEngine eng(opts);

    auto batch = makeBatch();
    auto out = eng.predictBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(batch[i])))
            << "request " << i;
}

TEST(Engine, ParallelForPropagatesExceptions)
{
    // A throwing body must surface on the calling thread (a worker
    // unwinding would terminate the process) and abandon the loop.
    PredictionEngine::Options opts;
    opts.numThreads = 2;
    PredictionEngine eng(opts);
    EXPECT_THROW(eng.parallelFor(100,
                                 [](std::size_t i) {
                                     if (i == 5)
                                         throw std::runtime_error("boom");
                                 }),
                 std::runtime_error);
}

TEST(Engine, NestedParallelForRunsInlineWithoutDeadlock)
{
    // parallelFor from inside a worker of the same pool must not wait
    // on jobs no worker is free to run; the inner loop runs inline.
    PredictionEngine::Options opts;
    opts.numThreads = 2;
    PredictionEngine eng(opts);

    std::atomic<int> count{0};
    eng.parallelFor(4, [&](std::size_t) {
        eng.parallelFor(3, [&](std::size_t) { ++count; });
    });
    EXPECT_EQ(count.load(), 12);
}

TEST(Engine, ParallelForCoversAllIndices)
{
    PredictionEngine::Options opts;
    opts.numThreads = 4;
    PredictionEngine eng(opts);

    std::vector<int> hits(1000, 0);
    eng.parallelFor(hits.size(),
                    [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

} // namespace
} // namespace facile::engine
