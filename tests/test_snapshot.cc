/**
 * @file
 * Tests for the warm-start snapshot (src/analysis/snapshot.h).
 *
 * The core contracts: (1) the InstRecord codec round-trips every field
 * bit-for-bit; (2) save → load in the same process is an append-only
 * no-op (existing records win; predictions stay bit-identical); (3) a
 * *fresh process* started from a snapshot produces bit-identical
 * predictions to a cold process over the full suite on all nine
 * arches (child-process probes); (4) corrupted, truncated, or
 * version-mismatched files are rejected without importing anything;
 * (5) a restored engine prediction cache serves hits immediately.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/intern.h"
#include "analysis/snapshot.h"
#include "corpus/sections.h"
#include "testing/fault.h"
#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "engine/engine.h"
#include "eval/harness.h"
#include "facile/predictor.h"

namespace facile {
namespace {

using eval::samePrediction;

/** A randomized suite distinct from the default evaluation seed. */
const std::vector<bhive::Benchmark> &
snapshotSuite()
{
    static const std::vector<bhive::Benchmark> suite =
        bhive::generateSuite(0x5eedfac5a9ULL, 5);
    return suite;
}

/** Analyze the suite on every arch so the interners have content. */
void
populateInterners()
{
    static const bool done = [] {
        for (uarch::UArch arch : uarch::allUArchs())
            for (const auto &b : snapshotSuite()) {
                bb::analyze(b.bytesU, arch);
                bb::analyze(b.bytesL, arch);
            }
        return true;
    }();
    (void)done;
}

std::string
tmpPath(const char *tag)
{
    return "test_snapshot_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".bin";
}

/** Bit-sensitive digest over TPL+TPU predictions of the whole suite. */
std::uint64_t
suiteDigest()
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    model::PredictScratch &scratch = model::tlsPredictScratch();
    for (uarch::UArch arch : uarch::allUArchs())
        for (const auto &b : snapshotSuite())
            for (bool loop : {false, true}) {
                const model::Prediction p = model::predict(
                    bb::analyze(loop ? b.bytesL : b.bytesU, arch), loop,
                    {}, scratch);
                h = analysis::fnv1a64(
                    reinterpret_cast<const std::uint8_t *>(&p.throughput),
                    8, h);
                h = analysis::fnv1a64(
                    reinterpret_cast<const std::uint8_t *>(
                        p.componentValue.data()),
                    sizeof(double) * p.componentValue.size(), h);
            }
    return h;
}

bool
sameRecord(const analysis::InstRecord &a, const analysis::InstRecord &b)
{
    if (a.dec.inst.mnem != b.dec.inst.mnem ||
        a.dec.inst.cc != b.dec.inst.cc ||
        a.dec.inst.nopLen != b.dec.inst.nopLen ||
        a.dec.inst.ops != b.dec.inst.ops ||
        a.dec.length != b.dec.length ||
        a.dec.opcodeOffset != b.dec.opcodeOffset ||
        a.dec.lcp != b.dec.lcp)
        return false;
    if (a.info.fusedUops != b.info.fusedUops ||
        a.info.issueUops != b.info.issueUops ||
        a.info.latency != b.info.latency ||
        a.info.needsComplexDecoder != b.info.needsComplexDecoder ||
        a.info.nAvailableSimpleDecoders !=
            b.info.nAvailableSimpleDecoders ||
        a.info.macroFusible != b.info.macroFusible ||
        a.info.eliminated != b.info.eliminated ||
        a.info.portUops.size() != b.info.portUops.size())
        return false;
    for (std::size_t i = 0; i < a.info.portUops.size(); ++i)
        if (a.info.portUops[i].ports != b.info.portUops[i].ports ||
            a.info.portUops[i].kind != b.info.portUops[i].kind)
            return false;
    if (a.rw.reads != b.rw.reads || a.rw.writes != b.rw.writes ||
        a.rw.depBreaking != b.rw.depBreaking)
        return false;
    if (a.depReads.size() != b.depReads.size())
        return false;
    for (std::size_t i = 0; i < a.depReads.size(); ++i)
        if (a.depReads[i].value != b.depReads[i].value ||
            std::memcmp(&a.depReads[i].latency, &b.depReads[i].latency,
                        sizeof(double)) != 0)
            return false;
    if (a.portMasks != b.portMasks || a.stackOp != b.stackOp ||
        a.depBreaking != b.depBreaking ||
        a.nWritesInl != b.nWritesInl || a.nDepInl != b.nDepInl)
        return false;
    if (a.nWritesInl != analysis::InstRecord::kSpilled)
        for (std::uint8_t i = 0; i < a.nWritesInl; ++i)
            if (a.writesInl[i] != b.writesInl[i])
                return false;
    if (a.nDepInl != analysis::InstRecord::kSpilled)
        for (std::uint8_t i = 0; i < a.nDepInl; ++i)
            if (a.depInl[i].value != b.depInl[i].value ||
                std::memcmp(&a.depInl[i].latency, &b.depInl[i].latency,
                            sizeof(double)) != 0)
                return false;
    return a.fuseClass == b.fuseClass && a.isJcc == b.isJcc &&
           a.jccReadsCf == b.jccReadsCf &&
           a.jccTestsSOP == b.jccTestsSOP;
}

TEST(SnapshotCodec, RecordRoundTripAllArches)
{
    populateInterners();
    std::size_t checked = 0;
    for (uarch::UArch arch : uarch::allUArchs()) {
        const analysis::InstInterner &in =
            analysis::InstInterner::forArch(arch);
        in.exportRecords([&](const std::uint8_t *, std::size_t,
                             const analysis::InstRecord &rec) {
            std::vector<std::uint8_t> buf;
            analysis::InstRecordSnapshotCodec::encode(buf, rec);
            std::size_t pos = 0;
            const analysis::InstRecord back =
                analysis::InstRecordSnapshotCodec::decode(
                    buf.data(), buf.size(), pos);
            EXPECT_EQ(pos, buf.size());
            EXPECT_TRUE(sameRecord(rec, back));
            ++checked;
        });
    }
    // Each arch saw a few hundred distinct instructions.
    EXPECT_GT(checked, 1000u);
}

TEST(SnapshotCodec, DecodeRejectsTruncation)
{
    populateInterners();
    const analysis::InstInterner &in =
        analysis::InstInterner::forArch(uarch::UArch::SKL);
    std::vector<std::uint8_t> buf;
    bool first = true;
    in.exportRecords([&](const std::uint8_t *, std::size_t,
                         const analysis::InstRecord &rec) {
        if (!first)
            return;
        first = false;
        analysis::InstRecordSnapshotCodec::encode(buf, rec);
    });
    ASSERT_FALSE(buf.empty());
    // Every proper prefix must throw, never crash or return garbage.
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        std::size_t pos = 0;
        EXPECT_THROW(analysis::InstRecordSnapshotCodec::decode(
                         buf.data(), cut, pos),
                     analysis::SnapshotError)
            << "prefix length " << cut;
    }
}

TEST(Snapshot, SaveLoadSameProcessIsAppendOnlyNoOp)
{
    populateInterners();
    const std::uint64_t before = suiteDigest();
    const std::string path = tmpPath("noop");

    const analysis::SnapshotStats saved = analysis::saveSnapshot(path);
    EXPECT_GT(saved.records, 1000u);
    EXPECT_GT(saved.fusedPairs, 0u);
    EXPECT_GT(saved.bytes, 0u);

    const analysis::SnapshotStats loaded = analysis::loadSnapshot(path);
    EXPECT_EQ(loaded.records, saved.records);
    EXPECT_EQ(loaded.fusedPairs, saved.fusedPairs);
    // Same process: every key is already interned; nothing may append.
    EXPECT_EQ(loaded.newRecords, 0u);

    // Predictions after the load are bit-identical to before.
    EXPECT_EQ(before, suiteDigest());
    std::remove(path.c_str());
}

TEST(Snapshot, EnginePredictionCacheRoundTrip)
{
    populateInterners();
    std::vector<engine::Request> batch;
    for (const auto &b : snapshotSuite())
        batch.push_back({b.bytesL, uarch::UArch::SKL, true, {}});

    engine::PredictionEngine::Options opts;
    opts.numThreads = 2;
    engine::PredictionEngine source(opts);
    const std::vector<model::Prediction> expected =
        source.predictBatch(batch);

    const std::string path = tmpPath("engine");
    const analysis::SnapshotStats saved =
        analysis::saveSnapshot(path, {&source});
    EXPECT_GE(saved.predictions, batch.size());

    engine::PredictionEngine restored(opts);
    const analysis::SnapshotStats loaded =
        analysis::loadSnapshot(path, {&restored});
    EXPECT_EQ(loaded.predictions, saved.predictions);

    engine::BatchStats bs;
    const std::vector<model::Prediction> out =
        restored.predictBatch(batch, &bs);
    EXPECT_EQ(bs.predictionCacheHits, batch.size());
    EXPECT_EQ(bs.analyzed, 0u);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(samePrediction(out[i], expected[i])) << i;
    std::remove(path.c_str());
}

TEST(Snapshot, RejectsCorruptionTruncationAndVersionMismatch)
{
    populateInterners();
    const std::string path = tmpPath("corrupt");
    // This matrix pokes v1 byte offsets (version at 8, checksum at 24,
    // FNV over everything past 32) — write the v1 format explicitly.
    // The v2 corruption matrix lives in SnapshotV2.*.
    analysis::saveSnapshot(path,
                           {.format = analysis::SnapshotFormat::V1});

    std::vector<std::uint8_t> file;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        file.resize(static_cast<std::size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        ASSERT_EQ(std::fread(file.data(), 1, file.size(), f),
                  file.size());
        std::fclose(f);
    }
    ASSERT_GT(file.size(), 64u);

    auto writeVariant = [&](const std::vector<std::uint8_t> &bytes) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (!bytes.empty()) {
            ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
    };

    // Truncations: header, mid-payload, one byte short.
    for (std::size_t cut :
         {std::size_t{0}, std::size_t{7}, std::size_t{31},
          std::size_t{40}, file.size() / 2, file.size() - 1}) {
        std::vector<std::uint8_t> t(file.begin(),
                                    file.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
        writeVariant(t);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError)
            << "truncated to " << cut;
    }

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = file;
        bad[0] ^= 0xff;
        writeVariant(bad);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError);
    }

    // Unsupported version.
    {
        std::vector<std::uint8_t> bad = file;
        bad[8] = static_cast<std::uint8_t>(analysis::kSnapshotVersion + 1);
        writeVariant(bad);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError);
    }

    // Payload corruption must fail the checksum — try several offsets.
    for (std::size_t off = 32; off < file.size();
         off += file.size() / 7) {
        std::vector<std::uint8_t> bad = file;
        bad[off] ^= 0x5a;
        writeVariant(bad);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError)
            << "flip at " << off;
    }

    // Corrupted checksum field itself.
    {
        std::vector<std::uint8_t> bad = file;
        bad[24] ^= 0x01;
        writeVariant(bad);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError);
    }

    // The pristine bytes still load (the harness above is not lossy).
    writeVariant(file);
    EXPECT_NO_THROW(analysis::loadSnapshot(path));
    std::remove(path.c_str());
}

/** Read the whole file (for the in-memory entry-point tests). */
std::vector<std::uint8_t>
slurpFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(buf.data(), 1, buf.size(), f), buf.size());
    std::fclose(f);
    return buf;
}

/** Count canonical records currently interned for @p arch. */
std::size_t
recordCount(uarch::UArch arch)
{
    std::size_t n = 0;
    analysis::InstInterner::forArch(arch).exportRecords(
        [&](const std::uint8_t *, std::size_t,
            const analysis::InstRecord &) { ++n; });
    return n;
}

TEST(Snapshot, MemoryLoadMatchesFileLoad)
{
    populateInterners();
    const std::string path = tmpPath("memload");
    const analysis::SnapshotStats saved = analysis::saveSnapshot(path);

    const std::vector<std::uint8_t> img = slurpFile(path);
    std::remove(path.c_str());
    const analysis::SnapshotStats st =
        analysis::loadSnapshotFromMemory(img.data(), img.size());
    EXPECT_EQ(st.records, saved.records);
    EXPECT_EQ(st.fusedPairs, saved.fusedPairs);
    EXPECT_EQ(st.bytes, img.size());
    // Same process: every key already interned, nothing appended.
    EXPECT_EQ(st.newRecords, 0u);
}

TEST(Snapshot, ValidateStagesEverythingAndCommitsNothing)
{
    populateInterners();
    const std::string path = tmpPath("validate");
    // Forging a key below assumes the v1 record layout at fixed
    // offsets; save that format explicitly.
    analysis::saveSnapshot(path,
                           {.format = analysis::SnapshotFormat::V1});
    std::vector<std::uint8_t> img = slurpFile(path);
    std::remove(path.c_str());

    // Forge a never-seen intern key: flip the first key byte of the
    // first record (the key is opaque to validation) and re-stamp the
    // checksum, so a committing load WOULD append a record.
    ASSERT_GT(img.size(), 54u);
    std::uint32_t sectionType;
    std::memcpy(&sectionType, img.data() + 32, 4);
    ASSERT_EQ(sectionType, 1u); // records section first
    img[53] ^= 0xFF;            // first key byte (keyLen at 52)
    const std::uint64_t sum =
        analysis::fnv1a64(img.data() + 32, img.size() - 32);
    std::memcpy(img.data() + 24, &sum, 8);

    std::uint32_t archWord;
    std::memcpy(&archWord, img.data() + 36, 4);
    const auto arch = static_cast<uarch::UArch>(archWord);

    // validateSnapshot: full staging pass, zero commitment.
    const std::size_t before = recordCount(arch);
    const analysis::SnapshotStats st =
        analysis::validateSnapshot(img.data(), img.size());
    EXPECT_GT(st.records, 0u);
    EXPECT_EQ(st.newRecords, 0u);
    EXPECT_EQ(recordCount(arch), before);

    // The same image, committed, appends the forged-key record.
    const analysis::SnapshotStats loaded =
        analysis::loadSnapshotFromMemory(img.data(), img.size());
    EXPECT_GE(loaded.newRecords, 1u);
    EXPECT_EQ(recordCount(arch), before + loaded.newRecords);
}

TEST(Snapshot, ForgedRecordCountCannotBloatMemory)
{
    // A section claiming 2^32-1 records in a 4-byte payload must be
    // rejected as truncation — and, with the clamped reserve, without
    // first attempting a count-sized allocation (the checksum is
    // FNV-1a, so an attacker can stamp any count they like).
    std::vector<std::uint8_t> img(32);
    std::memcpy(img.data(), "FACSNAP\n", 8);
    const std::uint32_t version = analysis::kSnapshotVersion;
    std::memcpy(img.data() + 8, &version, 4);
    const std::uint32_t sections = 1;
    std::memcpy(img.data() + 12, &sections, 4);

    auto put32 = [&](std::uint32_t v) {
        const std::size_t n = img.size();
        img.resize(n + 4);
        std::memcpy(img.data() + n, &v, 4);
    };
    auto put64 = [&](std::uint64_t v) {
        const std::size_t n = img.size();
        img.resize(n + 8);
        std::memcpy(img.data() + n, &v, 8);
    };
    put32(1); // SectionType::Records
    put32(0); // arch
    put64(4); // section len: just the count field
    put32(0xFFFFFFFFu);

    const std::uint64_t payloadLen = img.size() - 32;
    std::memcpy(img.data() + 16, &payloadLen, 8);
    const std::uint64_t sum =
        analysis::fnv1a64(img.data() + 32, payloadLen);
    std::memcpy(img.data() + 24, &sum, 8);

    EXPECT_THROW(analysis::validateSnapshot(img.data(), img.size()),
                 analysis::SnapshotError);
    EXPECT_THROW(analysis::loadSnapshotFromMemory(img.data(), img.size()),
                 analysis::SnapshotError);
}

/**
 * Child half of the fresh-process property: when the probe env vars
 * are set (by FreshProcessBitIdentity, in a *child* process whose
 * interners are empty), optionally load the snapshot, predict the
 * whole suite, and write the digest for the parent. In a normal test
 * run the env vars are unset and this is a skip.
 */
TEST(SnapshotProbe, Emit)
{
    const char *out = std::getenv("FACILE_SNAPSHOT_PROBE_OUT");
    if (!out)
        GTEST_SKIP() << "probe mode only (spawned by "
                        "FreshProcessBitIdentity)";
    if (const char *snap = std::getenv("FACILE_SNAPSHOT_PROBE_SNAP")) {
        const analysis::SnapshotStats st = analysis::loadSnapshot(snap);
        // A fresh process appends every record — nothing pre-existing.
        // Under the lazy v2 mmap bind nothing is appended at load
        // time at all; records materialize on first touch instead.
        if (st.loadMode == analysis::SnapshotLoadMode::MmapV2) {
            ASSERT_EQ(st.newRecords, 0u);
        } else {
            ASSERT_EQ(st.newRecords, st.records);
        }
        ASSERT_GT(st.records, 0u);
        // Resave *immediately* — before any prediction touches a
        // record — so ResaveAfterMmapStartKeepsUniverse exercises the
        // worst case: every record still behind the lazy mmap bind.
        if (const char *re =
                std::getenv("FACILE_SNAPSHOT_PROBE_RESAVE")) {
            const analysis::SnapshotStats rs = analysis::saveSnapshot(
                re, {.generations = 1});
            ASSERT_EQ(rs.records, st.records);
            ASSERT_EQ(rs.fusedPairs, st.fusedPairs);
        }
    }
    const std::uint64_t digest = suiteDigest();
    std::FILE *f = std::fopen(out, "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%016llx\n",
                 static_cast<unsigned long long>(digest));
    std::fclose(f);
}

/**
 * The headline property: a fresh process warm-started from a snapshot
 * produces bit-identical predictions (all nine arches, both notions)
 * to a fresh cold process. Runs this test binary twice as a child via
 * /proc/self/exe — each child is a genuinely cold process.
 */
TEST(Snapshot, FreshProcessBitIdentity)
{
    populateInterners();
    const std::string snap = tmpPath("fresh");
    analysis::saveSnapshot(snap);

    // /proc/self/exe must be resolved here: inside std::system's shell
    // child it would name the shell, not this binary.
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
    ASSERT_GT(n, 0);
    self[n] = '\0';

    auto probe = [&](bool warm, std::uint64_t &digest) {
        const std::string out =
            tmpPath(warm ? "digest_warm" : "digest_cold");
        std::string cmd = "FACILE_SNAPSHOT_PROBE_OUT='" + out + "' ";
        if (warm)
            cmd += "FACILE_SNAPSHOT_PROBE_SNAP='" + snap + "' ";
        cmd += "'" + std::string(self) +
               "' --gtest_filter=SnapshotProbe.Emit >/dev/null 2>&1";
        if (std::system(cmd.c_str()) != 0)
            return false;
        std::FILE *f = std::fopen(out.c_str(), "r");
        if (!f)
            return false;
        unsigned long long d = 0;
        const bool ok = std::fscanf(f, "%llx", &d) == 1;
        std::fclose(f);
        std::remove(out.c_str());
        digest = d;
        return ok;
    };

    std::uint64_t cold = 0, warm = 1;
    ASSERT_TRUE(probe(false, cold));
    ASSERT_TRUE(probe(true, warm));
    EXPECT_EQ(cold, warm);
    // And both match this (differently warmed) process.
    EXPECT_EQ(cold, suiteDigest());
    std::remove(snap.c_str());
}

// ---- crash safety: atomic writes + generation rotation + fallback ----------

bool
fileExists(const std::string &p)
{
    std::FILE *f = std::fopen(p.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

/** Replace @p p with the first @p len bytes of @p full (a torn write). */
void
writeTorn(const std::string &p, const std::vector<std::uint8_t> &full,
          std::size_t len)
{
    ASSERT_LE(len, full.size());
    std::FILE *f = std::fopen(p.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (len > 0) {
        ASSERT_EQ(std::fwrite(full.data(), 1, len, f), len);
    }
    std::fclose(f);
}

void
removeGenerations(const std::string &path)
{
    for (int g = 0; g < analysis::kSnapshotGenerations + 1; ++g)
        std::remove(analysis::snapshotGenerationPath(path, g).c_str());
}

TEST(SnapshotCrashSafety, GenerationPathLayout)
{
    EXPECT_EQ(analysis::snapshotGenerationPath("snap.bin", 0),
              "snap.bin");
    EXPECT_EQ(analysis::snapshotGenerationPath("snap.bin", 1),
              "snap.bin.g1");
    EXPECT_EQ(analysis::snapshotGenerationPath("snap.bin", 2),
              "snap.bin.g2");
}

TEST(SnapshotCrashSafety, SavesRotateGenerationsAndLeaveNoTempFiles)
{
    populateInterners();
    const std::string path = tmpPath("rotate");
    removeGenerations(path);

    analysis::saveSnapshot(path);
    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".g1")) << "one save, one generation";

    analysis::saveSnapshot(path);
    EXPECT_TRUE(fileExists(path + ".g1"));
    analysis::saveSnapshot(path);
    EXPECT_TRUE(fileExists(path + ".g2"));
    analysis::saveSnapshot(path);
    // kSnapshotGenerations == 3: nothing rotates beyond .g2.
    EXPECT_FALSE(fileExists(path + ".g3"));

    // The staging file never outlives a save (atomic temp + rename).
    EXPECT_FALSE(fileExists(path + ".tmp." +
                            std::to_string(::getpid())));

    // Every kept generation is independently loadable.
    for (int g = 0; g < analysis::kSnapshotGenerations; ++g) {
        const analysis::SnapshotStats st = analysis::loadSnapshot(
            analysis::snapshotGenerationPath(path, g), {});
        EXPECT_GT(st.records, 0u) << "generation " << g;
        EXPECT_EQ(st.generation, 0u)
            << "direct load, no fallback involved";
    }
    removeGenerations(path);
}

TEST(SnapshotCrashSafety, TornPrimaryFallsBackToPreviousGeneration)
{
    populateInterners();
    const std::string path = tmpPath("torn");
    removeGenerations(path);

    const analysis::SnapshotStats first = analysis::saveSnapshot(path);
    analysis::saveSnapshot(path); // rotates the first image to .g1
    const std::vector<std::uint8_t> primary = slurpFile(path);

    // A SIGKILL mid-write (without the atomic temp) would leave a
    // prefix of the image; emulate every interesting tear point and
    // require the loader to land on .g1 each time.
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{7}, std::size_t{31},
          primary.size() / 3, primary.size() / 2, primary.size() - 1}) {
        writeTorn(path, primary, cut);
        const analysis::SnapshotStats st = analysis::loadSnapshot(path);
        EXPECT_EQ(st.generation, 1u) << "cut " << cut;
        EXPECT_EQ(st.records, first.records) << "cut " << cut;
        // Same process, so the fallback image appends nothing — and
        // predictions stay bit-identical by the no-op property.
        EXPECT_EQ(st.newRecords, 0u);
    }

    // With the fallback gone too, the walk must report the root cause.
    std::remove((path + ".g1").c_str());
    writeTorn(path, primary, 31);
    EXPECT_THROW(analysis::loadSnapshot(path), analysis::SnapshotError);
    removeGenerations(path);
}

TEST(SnapshotCrashSafety, FallbackWarmStartIsBitIdenticalInFreshProcess)
{
    // The chaos-restart property at snapshot granularity: a fresh
    // process pointed at a torn primary with a good .g1 behind it
    // must warm-start bit-identically to a cold run. Reuses the
    // SnapshotProbe.Emit child (it calls loadSnapshot, which walks
    // generations).
    populateInterners();
    const std::string snap = tmpPath("fallback");
    removeGenerations(snap);
    analysis::saveSnapshot(snap);
    analysis::saveSnapshot(snap);
    {
        const std::vector<std::uint8_t> primary = slurpFile(snap);
        writeTorn(snap, primary, primary.size() / 2);
    }

    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
    ASSERT_GT(n, 0);
    self[n] = '\0';

    auto probe = [&](bool warm, std::uint64_t &digest) {
        const std::string out =
            tmpPath(warm ? "fb_digest_warm" : "fb_digest_cold");
        std::string cmd = "FACILE_SNAPSHOT_PROBE_OUT='" + out + "' ";
        if (warm)
            cmd += "FACILE_SNAPSHOT_PROBE_SNAP='" + snap + "' ";
        cmd += "'" + std::string(self) +
               "' --gtest_filter=SnapshotProbe.Emit >/dev/null 2>&1";
        if (std::system(cmd.c_str()) != 0)
            return false;
        std::FILE *f = std::fopen(out.c_str(), "r");
        if (!f)
            return false;
        unsigned long long d = 0;
        const bool ok = std::fscanf(f, "%llx", &d) == 1;
        std::fclose(f);
        std::remove(out.c_str());
        digest = d;
        return ok;
    };

    std::uint64_t cold = 0, warm = 1;
    ASSERT_TRUE(probe(false, cold));
    ASSERT_TRUE(probe(true, warm));
    EXPECT_EQ(cold, warm);
    removeGenerations(snap);
}

/**
 * Injected save-time crashes (torn staging write, failed fsync,
 * failed rotation, failed commit rename): every failure mode must
 * abort the save with the previous on-disk state fully loadable —
 * the acceptance bar "no save failure leaves the on-disk state
 * unloadable". Skips in builds without FACILE_FAULT_INJECT.
 */
TEST(SnapshotCrashSafety, InjectedSaveFailuresNeverCorruptOnDiskState)
{
    if (!testing::kFaultInjection)
        GTEST_SKIP() << "built without FACILE_FAULT_INJECT";
    populateInterners();
    testing::resetFaults();
    const std::string path = tmpPath("inject");
    removeGenerations(path);
    const analysis::SnapshotStats good = analysis::saveSnapshot(path);

    struct Case {
        const char *site;
        facile::testing::FaultSpec spec;
    };
    const Case cases[] = {
        {"snapshot.open", {.firstHit = 0, .count = 1, .err = EACCES}},
        {"snapshot.write", {.firstHit = 0, .count = 1, .err = ENOSPC}},
        // The torn write proper: stage only 100 bytes of the image.
        {"snapshot.write",
         {.firstHit = 0, .count = 1, .clampBytes = 100}},
        {"snapshot.fsync", {.firstHit = 0, .count = 1, .err = EIO}},
        {"snapshot.rotate", {.firstHit = 0, .count = 1, .err = EACCES}},
        {"snapshot.rename", {.firstHit = 0, .count = 1, .err = EACCES}},
    };
    for (const Case &c : cases) {
        testing::resetFaults();
        testing::armFault(c.site, c.spec);
        EXPECT_THROW(analysis::saveSnapshot(path),
                     analysis::SnapshotError)
            << c.site;
        testing::resetFaults();
        // The failed save must not have torn what was there before...
        const analysis::SnapshotStats st = analysis::loadSnapshot(path);
        EXPECT_EQ(st.records, good.records) << c.site;
        // ...nor leaked its staging file.
        EXPECT_FALSE(fileExists(path + ".tmp." +
                                std::to_string(::getpid())))
            << c.site;
    }

    // Special case: a commit-rename failure AFTER rotation leaves the
    // primary name vacant — the generation walk must still recover
    // via .g1 (the image the rotation preserved).
    analysis::saveSnapshot(path); // ensure .g1 exists
    testing::armFault("snapshot.rename",
                      {.firstHit = testing::faultHits("snapshot.rename"),
                       .count = 1, .err = EACCES});
    EXPECT_THROW(analysis::saveSnapshot(path), analysis::SnapshotError);
    testing::resetFaults();
    EXPECT_FALSE(fileExists(path)) << "rotation moved the primary away";
    const analysis::SnapshotStats st = analysis::loadSnapshot(path);
    EXPECT_EQ(st.generation, 1u);
    EXPECT_EQ(st.records, good.records);
    removeGenerations(path);
}

// ---- snapshot v2: mmap-native sectioned image ------------------------------

/** Decode the section table of a v2 image (validated, file order). */
std::vector<corpus::SectionEntry>
v2Table(const std::vector<std::uint8_t> &img)
{
    EXPECT_GE(img.size(), 64u);
    std::uint32_t count = 0;
    std::memcpy(&count, img.data() + 20, 4);
    return corpus::decodeSectionTable(img.data() + 64, img.size() - 64,
                                      count, img.size());
}

/** Overwrite @p path with @p bytes. */
void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}

TEST(SnapshotV2, RoundTripLoadModes)
{
    populateInterners();
    const std::uint64_t before = suiteDigest();
    const std::string path = tmpPath("v2_roundtrip");
    removeGenerations(path);

    const analysis::SnapshotStats saved = analysis::saveSnapshot(path);
    EXPECT_EQ(saved.formatVersion, 2u) << "V2 is the default format";
    EXPECT_GT(saved.records, 1000u);

    // Default load: mmap + lazy bind — no records parsed, none appended.
    const auto binds = analysis::snapshotSourceStats().imagesBound;
    const analysis::SnapshotStats mm = analysis::loadSnapshot(path);
    EXPECT_EQ(mm.loadMode, analysis::SnapshotLoadMode::MmapV2);
    EXPECT_EQ(mm.formatVersion, 2u);
    EXPECT_EQ(mm.records, saved.records);
    EXPECT_EQ(mm.fusedPairs, saved.fusedPairs);
    EXPECT_EQ(mm.newRecords, 0u);
    EXPECT_EQ(analysis::snapshotSourceStats().imagesBound, binds + 1);

    // Opting out of the mmap bind parses the same file eagerly.
    const analysis::SnapshotStats eager =
        analysis::loadSnapshot(path, {.eagerLoad = true});
    EXPECT_EQ(eager.loadMode, analysis::SnapshotLoadMode::EagerV2);
    EXPECT_EQ(eager.records, saved.records);
    EXPECT_EQ(eager.fusedPairs, saved.fusedPairs);

    // Wire images have no file behind them: always eager.
    const std::vector<std::uint8_t> img = slurpFile(path);
    EXPECT_EQ(analysis::snapshotImageFormat(img.data(), img.size()),
              analysis::SnapshotFormat::V2);
    const analysis::SnapshotStats mem =
        analysis::loadSnapshotFromMemory(img.data(), img.size());
    EXPECT_EQ(mem.loadMode, analysis::SnapshotLoadMode::EagerV2);
    EXPECT_EQ(mem.records, saved.records);

    // Every section payload starts on a page boundary.
    for (const corpus::SectionEntry &e : v2Table(img))
        EXPECT_EQ(e.offset % corpus::kSectionAlign, 0u)
            << "section type " << e.type << " tag " << e.tag;

    EXPECT_EQ(before, suiteDigest());
    removeGenerations(path);
}

TEST(SnapshotV2, HeaderTableAndTailCorruptionRejected)
{
    populateInterners();
    const std::string path = tmpPath("v2_corrupt");
    removeGenerations(path);
    analysis::saveSnapshot(path);
    const std::vector<std::uint8_t> file = slurpFile(path);
    ASSERT_GT(file.size(), 8192u);

    // Truncations: header, table, first section, mid-image, last byte.
    for (std::size_t cut :
         {std::size_t{0}, std::size_t{7}, std::size_t{31},
          std::size_t{63}, std::size_t{4095}, file.size() / 2,
          file.size() - 1}) {
        std::vector<std::uint8_t> t(file.begin(),
                                    file.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
        writeFile(path, t);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError)
            << "truncated to " << cut;
    }

    // Single-byte header damage: magic, version, endian tag, page
    // size, section count, file size, table offset, table hash,
    // header hash, reserved tail.
    for (std::size_t off : {std::size_t{0}, std::size_t{8},
                            std::size_t{12}, std::size_t{16},
                            std::size_t{20}, std::size_t{24},
                            std::size_t{32}, std::size_t{40},
                            std::size_t{48}, std::size_t{56}}) {
        std::vector<std::uint8_t> bad = file;
        bad[off] ^= 0x01;
        writeFile(path, bad);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError)
            << "header flip at " << off;
        EXPECT_THROW(analysis::validateSnapshot(bad.data(), bad.size()),
                     analysis::SnapshotError)
            << "header flip at " << off;
    }

    // Table damage is caught by the table hash wherever it lands.
    const std::size_t tableBytes = v2Table(file).size() * 64;
    for (std::size_t off = 64; off < 64 + tableBytes; off += 13) {
        std::vector<std::uint8_t> bad = file;
        bad[off] ^= 0x80;
        writeFile(path, bad);
        EXPECT_THROW(analysis::loadSnapshot(path),
                     analysis::SnapshotError)
            << "table flip at " << off;
    }

    // The pristine image still loads (the harness is not lossy).
    writeFile(path, file);
    EXPECT_NO_THROW(analysis::loadSnapshot(path));
    removeGenerations(path);
}

TEST(SnapshotV2, SectionBitFlipsEagerRejectLazyPoison)
{
    populateInterners();
    const std::string path = tmpPath("v2_flip");
    removeGenerations(path);
    analysis::saveSnapshot(path);
    const std::vector<std::uint8_t> file = slurpFile(path);
    const std::vector<corpus::SectionEntry> table = v2Table(file);

    for (const corpus::SectionEntry &e : table) {
        std::vector<std::uint8_t> bad = file;
        bad[e.offset + e.length / 2] ^= 0x5a;

        // The deep eager walk (validateSnapshot / snaptool verify /
        // wire images) rejects a flip in ANY section.
        EXPECT_THROW(analysis::validateSnapshot(bad.data(), bad.size()),
                     analysis::SnapshotError)
            << "section type " << e.type << " tag " << e.tag;

        writeFile(path, bad);
        if (e.type == 1) {
            // Records sections are verified lazily: the mmap load
            // itself succeeds, the damaged section is poisoned on
            // first touch (covered end-to-end by the fresh-process
            // test below — here every key is already interned, so
            // the source is never consulted).
            const analysis::SnapshotStats st =
                analysis::loadSnapshot(path);
            EXPECT_EQ(st.loadMode, analysis::SnapshotLoadMode::MmapV2)
                << "tag " << e.tag;
        } else {
            // Pairs/prediction tails are verified eagerly at load.
            EXPECT_THROW(analysis::loadSnapshot(path),
                         analysis::SnapshotError)
                << "section type " << e.type << " tag " << e.tag;
        }
    }
    removeGenerations(path);
}

TEST(SnapshotV2, MisalignedImageFallsBackToEagerParse)
{
    populateInterners();
    const std::string path = tmpPath("v2_misaligned");
    removeGenerations(path);
    const analysis::SnapshotStats saved = analysis::saveSnapshot(path);
    const std::vector<std::uint8_t> file = slurpFile(path);
    const std::vector<corpus::SectionEntry> table = v2Table(file);

    // Repack the image with 8-byte instead of page-aligned sections:
    // a legal-but-unmappable layout (e.g. a foreign writer). Payload
    // bytes are untouched, so the per-section hashes still hold; only
    // the table offsets, file size, and the two header hashes change.
    std::vector<corpus::SectionEntry> packed = table;
    std::vector<std::uint8_t> img(
        file.begin(),
        file.begin() + 64 + static_cast<std::ptrdiff_t>(table.size() * 64));
    for (std::size_t i = 0; i < table.size(); ++i) {
        img.resize(corpus::alignUp(img.size(), 8), 0);
        packed[i].offset = img.size();
        img.insert(img.end(),
                   file.begin() +
                       static_cast<std::ptrdiff_t>(table[i].offset),
                   file.begin() + static_cast<std::ptrdiff_t>(
                                      table[i].offset + table[i].length));
    }
    ASSERT_LT(img.size(), file.size()) << "padding actually removed";
    const std::vector<std::uint8_t> tbl =
        corpus::encodeSectionTable(packed);
    std::copy(tbl.begin(), tbl.end(), img.begin() + 64);
    const std::uint64_t fileBytes = img.size();
    std::memcpy(img.data() + 24, &fileBytes, 8);
    const std::uint64_t tableHash =
        corpus::xxh64(img.data() + 64, tbl.size());
    std::memcpy(img.data() + 40, &tableHash, 8);
    const std::uint64_t headerHash = corpus::xxh64(img.data(), 48);
    std::memcpy(img.data() + 48, &headerHash, 8);

    writeFile(path, img);
    const analysis::SnapshotStats st = analysis::loadSnapshot(path);
    EXPECT_EQ(st.loadMode, analysis::SnapshotLoadMode::EagerV2);
    EXPECT_EQ(st.formatVersion, 2u);
    EXPECT_EQ(st.records, saved.records);
    EXPECT_EQ(st.fusedPairs, saved.fusedPairs);
    removeGenerations(path);
}

TEST(SnapshotV2, MmapFaultFallsBackToEagerParse)
{
    if (!testing::kFaultInjection)
        GTEST_SKIP() << "built without FACILE_FAULT_INJECT";
    populateInterners();
    testing::resetFaults();
    const std::string path = tmpPath("v2_mmapfault");
    removeGenerations(path);
    const analysis::SnapshotStats saved = analysis::saveSnapshot(path);

    testing::armFault("snapshot.mmap",
                      {.firstHit = testing::faultHits("snapshot.mmap"),
                       .count = 1, .err = ENOMEM});
    const analysis::SnapshotStats st = analysis::loadSnapshot(path);
    testing::resetFaults();
    EXPECT_EQ(st.loadMode, analysis::SnapshotLoadMode::EagerV2)
        << "failed mmap degrades to the parse path, never to an error";
    EXPECT_EQ(st.records, saved.records);
    removeGenerations(path);
}

TEST(SnapshotV2, FallsBackThroughGenerationsToV1)
{
    populateInterners();
    const std::string path = tmpPath("v2_to_v1");
    removeGenerations(path);

    // History: a v1 save (old binary), then a v2 save rotates it to
    // .g1, then the primary is damaged.
    const analysis::SnapshotStats v1 = analysis::saveSnapshot(
        path, {.format = analysis::SnapshotFormat::V1});
    analysis::saveSnapshot(path);
    std::vector<std::uint8_t> bad = slurpFile(path);
    bad[48] ^= 0xff; // header hash
    writeFile(path, bad);

    const analysis::SnapshotStats st = analysis::loadSnapshot(path);
    EXPECT_EQ(st.generation, 1u);
    EXPECT_EQ(st.formatVersion, 1u);
    EXPECT_EQ(st.loadMode, analysis::SnapshotLoadMode::ParseV1);
    EXPECT_EQ(st.records, v1.records);
    removeGenerations(path);
}

TEST(SnapshotV2, BitFlippedRecordsStayBitIdenticalInFreshProcess)
{
    // End-to-end poison property: a fresh process warm-started from a
    // v2 image whose records section is silently damaged must still
    // produce bit-identical predictions — the poisoned section falls
    // back to cold analysis per lookup instead of serving garbage.
    populateInterners();
    const std::string snap = tmpPath("v2_poison");
    removeGenerations(snap);
    analysis::saveSnapshot(snap);
    {
        std::vector<std::uint8_t> img = slurpFile(snap);
        const std::vector<corpus::SectionEntry> table = v2Table(img);
        bool flipped = false;
        for (const corpus::SectionEntry &e : table)
            if (e.type == 1 && !flipped) {
                img[e.offset + e.length / 2] ^= 0xff;
                flipped = true;
            }
        ASSERT_TRUE(flipped);
        writeFile(snap, img);
    }

    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
    ASSERT_GT(n, 0);
    self[n] = '\0';

    auto probe = [&](bool warm, std::uint64_t &digest) {
        const std::string out =
            tmpPath(warm ? "poison_digest_warm" : "poison_digest_cold");
        std::string cmd = "FACILE_SNAPSHOT_PROBE_OUT='" + out + "' ";
        if (warm)
            cmd += "FACILE_SNAPSHOT_PROBE_SNAP='" + snap + "' ";
        cmd += "'" + std::string(self) +
               "' --gtest_filter=SnapshotProbe.Emit >/dev/null 2>&1";
        if (std::system(cmd.c_str()) != 0)
            return false;
        std::FILE *f = std::fopen(out.c_str(), "r");
        if (!f)
            return false;
        unsigned long long d = 0;
        const bool ok = std::fscanf(f, "%llx", &d) == 1;
        std::fclose(f);
        std::remove(out.c_str());
        digest = d;
        return ok;
    };

    std::uint64_t cold = 0, warm = 1;
    ASSERT_TRUE(probe(false, cold));
    ASSERT_TRUE(probe(true, warm));
    EXPECT_EQ(cold, warm);
    removeGenerations(snap);
}

TEST(SnapshotV2, ResaveAfterMmapStartKeepsUniverse)
{
    // Regression: a process warm-started from an mmap'd v2 image
    // serves records through the lazily bound RecordSource, which
    // exportRecords cannot see — an immediate save used to persist
    // only the (empty) canonical arenas, silently shrinking the
    // snapshot to zero records. saveSnapshot must materialize the
    // bound sources first, so save-after-mmap-start round-trips the
    // whole universe. Only reproducible in a fresh child: this
    // process's interners are already warm.
    populateInterners();
    const std::string snap = tmpPath("v2_resave_src");
    const std::string resaved = tmpPath("v2_resave_dst");
    removeGenerations(snap);
    std::remove(resaved.c_str());
    const analysis::SnapshotStats saved = analysis::saveSnapshot(snap);
    ASSERT_EQ(saved.formatVersion, 2u);

    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
    ASSERT_GT(n, 0);
    self[n] = '\0';

    const std::string out = tmpPath("v2_resave_out");
    const std::string cmd = "FACILE_SNAPSHOT_PROBE_OUT='" + out +
                            "' FACILE_SNAPSHOT_PROBE_SNAP='" + snap +
                            "' FACILE_SNAPSHOT_PROBE_RESAVE='" + resaved +
                            "' '" + std::string(self) +
                            "' --gtest_filter=SnapshotProbe.Emit "
                            ">/dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0)
        << "child probe failed (load or resave assertions)";
    std::remove(out.c_str());

    // The child's resave carries the full universe, not just the
    // records it happened to touch.
    const std::vector<std::uint8_t> img = slurpFile(resaved);
    const analysis::SnapshotModel m =
        analysis::parseSnapshotModel(img.data(), img.size());
    std::size_t records = 0, pairs = 0;
    for (const analysis::SnapshotModel::Arch &a : m.arches) {
        records += a.records.size();
        pairs += a.fusedPairs.size();
    }
    EXPECT_EQ(records, saved.records);
    EXPECT_EQ(pairs, saved.fusedPairs);
    std::remove(resaved.c_str());
    removeGenerations(snap);
}

TEST(SnapshotV2, ConvertRoundTripIsByteIdentical)
{
    // The contract snaptool convert relies on:
    // buildSnapshotImage(parseSnapshotModel(img), sameFormat) == img,
    // bit for bit, in both formats — and cross-format conversion
    // preserves the model exactly.
    populateInterners();
    const std::string path = tmpPath("v2_convert");
    removeGenerations(path);

    analysis::saveSnapshot(path);
    const std::vector<std::uint8_t> v2 = slurpFile(path);
    analysis::saveSnapshot(path,
                           {.format = analysis::SnapshotFormat::V1});
    const std::vector<std::uint8_t> v1 = slurpFile(path);
    removeGenerations(path);

    const analysis::SnapshotModel mv2 =
        analysis::parseSnapshotModel(v2.data(), v2.size());
    const analysis::SnapshotModel mv1 =
        analysis::parseSnapshotModel(v1.data(), v1.size());
    EXPECT_EQ(mv2.sourceVersion, 2u);
    EXPECT_EQ(mv1.sourceVersion, 1u);

    // Same-format rebuilds are byte-identical.
    EXPECT_EQ(analysis::buildSnapshotImage(
                  mv2, analysis::SnapshotFormat::V2),
              v2);
    EXPECT_EQ(analysis::buildSnapshotImage(
                  mv1, analysis::SnapshotFormat::V1),
              v1);

    // Cross-format round trips land back on the original bytes.
    const std::vector<std::uint8_t> v2FromV1 =
        analysis::buildSnapshotImage(mv1,
                                     analysis::SnapshotFormat::V2);
    const analysis::SnapshotModel back1 = analysis::parseSnapshotModel(
        v2FromV1.data(), v2FromV1.size());
    EXPECT_EQ(analysis::buildSnapshotImage(
                  back1, analysis::SnapshotFormat::V1),
              v1);

    const std::vector<std::uint8_t> v1FromV2 =
        analysis::buildSnapshotImage(mv2,
                                     analysis::SnapshotFormat::V1);
    const analysis::SnapshotModel back2 = analysis::parseSnapshotModel(
        v1FromV2.data(), v1FromV2.size());
    EXPECT_EQ(analysis::buildSnapshotImage(
                  back2, analysis::SnapshotFormat::V2),
              v2);

    // Both representations validate to the same logical contents.
    const analysis::SnapshotStats s1 =
        analysis::validateSnapshot(v1.data(), v1.size());
    const analysis::SnapshotStats s2 =
        analysis::validateSnapshot(v2.data(), v2.size());
    EXPECT_EQ(s1.records, s2.records);
    EXPECT_EQ(s1.fusedPairs, s2.fusedPairs);
    EXPECT_EQ(s1.predictions, s2.predictions);
}

} // namespace
} // namespace facile
