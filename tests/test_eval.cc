/**
 * @file
 * Evaluation-harness tests: suite preparation, scoring, rounding
 * convention, heatmap binning, and timing plumbing.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.h"

namespace facile::eval {
namespace {

const std::vector<bhive::Benchmark> &
tinySuite()
{
    static const auto suite = bhive::generateSuite(4, 2);
    return suite;
}

const ArchSuite &
preparedSkl()
{
    static const ArchSuite s = prepare(uarch::UArch::SKL, tinySuite());
    return s;
}

TEST(Eval, PrepareProducesGroundTruth)
{
    const ArchSuite &s = preparedSkl();
    EXPECT_EQ(s.blocksU.size(), tinySuite().size());
    EXPECT_EQ(s.measuredU.size(), tinySuite().size());
    for (double m : s.measuredU) {
        EXPECT_GT(m, 0.0);
        // Rounded to two decimals.
        EXPECT_NEAR(m * 100.0, std::round(m * 100.0), 1e-9);
    }
    for (double m : s.measuredL)
        EXPECT_GT(m, 0.0);
}

TEST(Eval, FacileScoresWell)
{
    baselines::FacilePredictor facile;
    Accuracy u = evaluate(facile, preparedSkl(), false);
    Accuracy l = evaluate(facile, preparedSkl(), true);
    EXPECT_LT(u.mape, 0.10);
    EXPECT_GT(u.kendall, 0.85);
    EXPECT_LT(l.mape, 0.10);
    EXPECT_GT(l.kendall, 0.85);
}

TEST(Eval, PerfectPredictorScoresZeroMape)
{
    // The simulator predictor reproduces the ground truth exactly.
    baselines::SimulatorPredictor simPred;
    Accuracy a = evaluate(simPred, preparedSkl(), false);
    EXPECT_DOUBLE_EQ(a.mape, 0.0);
    EXPECT_GT(a.kendall, 0.999);
}

TEST(Eval, ScoreSurfacesSkippedZeroMeasuredPairs)
{
    Accuracy a = score({0.0, 2.0}, {1.0, 2.0});
    EXPECT_EQ(a.mapeSkipped, 1u);
    EXPECT_DOUBLE_EQ(a.mape, 0.0); // the surviving pair is exact

    // All pairs skipped: the metric is undefined, not perfect.
    Accuracy b = score({0.0, 0.0}, {1.0, 2.0});
    EXPECT_TRUE(std::isnan(b.mape));
    EXPECT_EQ(b.mapeSkipped, 2u);

    Accuracy c = evaluate(baselines::FacilePredictor{}, preparedSkl(),
                          false);
    EXPECT_EQ(c.mapeSkipped, 0u); // real suites have no zero ground truth
}

TEST(Eval, RunPredictorRoundsToTwoDecimals)
{
    baselines::FacilePredictor facile;
    auto preds = runPredictor(facile, preparedSkl(), false);
    for (double p : preds)
        EXPECT_NEAR(p * 100.0, std::round(p * 100.0), 1e-9);
}

TEST(Eval, TimePerBenchmarkIsPositive)
{
    baselines::FacilePredictor facile;
    double ms = timePerBenchmarkMs(facile, preparedSkl(), false);
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, 100.0);
}

TEST(Eval, HeatmapBinsCorrectly)
{
    auto grid = heatmap({0.5, 1.5, 9.5, 12.0}, {0.4, 1.6, 9.9, 1.0},
                        10.0, 10);
    // 12.0 measured is out of range and dropped.
    int total = 0;
    for (const auto &row : grid)
        for (int c : row)
            total += c;
    EXPECT_EQ(total, 3);
    EXPECT_EQ(grid[0][0], 1); // (0.5, 0.4)
    EXPECT_EQ(grid[1][1], 1); // (1.5, 1.6)
    EXPECT_EQ(grid[9][9], 1); // (9.5, 9.9)
}

TEST(Eval, HeatmapClampsOverprediction)
{
    auto grid = heatmap({5.0}, {42.0}, 10.0, 10);
    EXPECT_EQ(grid[9][5], 1);
}

TEST(Eval, RenderHeatmapProducesGrid)
{
    auto grid = heatmap({1.0, 2.0}, {1.0, 2.0}, 10.0, 10);
    std::string s = renderHeatmap(grid, 10.0);
    EXPECT_NE(s.find("measured"), std::string::npos);
    EXPECT_GT(std::count(s.begin(), s.end(), '\n'), 10);
}

} // namespace
} // namespace facile::eval
