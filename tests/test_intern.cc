/**
 * @file
 * Tests for the instruction interning cache (src/analysis/intern.h) and
 * the interned block analysis built on it.
 *
 * The core contract: analysis through the shared intern cache is
 * bit-identical to fresh (intern-disabled) analysis — same predictions,
 * same annotations — over randomized BHive blocks on all nine
 * microarchitectures, including under concurrent hammering from the
 * engine worker pool (the concurrency tests run under TSan in CI).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "analysis/intern.h"
#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "engine/engine.h"
#include "eval/harness.h"
#include "facile/component.h"
#include "facile/predictor.h"

namespace facile {
namespace {

using eval::samePrediction;

/** Value equality of two InstrInfos (they have no operator==). */
bool
sameInfo(const uops::InstrInfo &a, const uops::InstrInfo &b)
{
    if (a.fusedUops != b.fusedUops || a.issueUops != b.issueUops ||
        a.latency != b.latency ||
        a.needsComplexDecoder != b.needsComplexDecoder ||
        a.nAvailableSimpleDecoders != b.nAvailableSimpleDecoders ||
        a.macroFusible != b.macroFusible || a.eliminated != b.eliminated)
        return false;
    if (a.portUops.size() != b.portUops.size())
        return false;
    for (std::size_t i = 0; i < a.portUops.size(); ++i)
        if (a.portUops[i].ports != b.portUops[i].ports ||
            a.portUops[i].kind != b.portUops[i].kind)
            return false;
    return true;
}

/** A randomized suite distinct from the default evaluation seed. */
const std::vector<bhive::Benchmark> &
randomSuite()
{
    static const std::vector<bhive::Benchmark> suite =
        bhive::generateSuite(0xfac11e5eedULL, 6);
    return suite;
}

TEST(Intern, BitIdenticalToFreshAnalysisAllArches)
{
    for (uarch::UArch arch : uarch::allUArchs()) {
        for (const auto &b : randomSuite()) {
            for (const auto *bytes : {&b.bytesU, &b.bytesL}) {
                bb::BasicBlock shared = bb::analyze(*bytes, arch);
                bb::BasicBlock fresh =
                    bb::analyze(*bytes, arch, bb::InternMode::Off);

                ASSERT_EQ(shared.insts.size(), fresh.insts.size());
                for (std::size_t i = 0; i < shared.insts.size(); ++i) {
                    const auto &si = shared.insts[i];
                    const auto &fi = fresh.insts[i];
                    EXPECT_EQ(si.start, fi.start);
                    EXPECT_EQ(si.end, fi.end);
                    EXPECT_EQ(si.opcodePos, fi.opcodePos);
                    EXPECT_EQ(si.fusedWithPrev, fi.fusedWithPrev);
                    EXPECT_EQ(si.dec->length, fi.dec->length);
                    EXPECT_EQ(si.dec->lcp, fi.dec->lcp);
                    EXPECT_TRUE(sameInfo(*si.info, *fi.info));
                    // Off-mode blocks carry no precomputed sets (the
                    // pre-interning path computed them per call);
                    // interned sets must equal a fresh computation.
                    EXPECT_EQ(fi.rw, nullptr);
                    const isa::RwSets freshRw =
                        isa::instRw(fi.dec->inst);
                    EXPECT_EQ(si.rw->reads, freshRw.reads);
                    EXPECT_EQ(si.rw->writes, freshRw.writes);
                    EXPECT_EQ(si.rw->depBreaking, freshRw.depBreaking);
                }

                for (bool loop : {false, true}) {
                    model::Prediction ps =
                        model::predict(shared, loop, {});
                    model::Prediction pf = model::predict(fresh, loop, {});
                    EXPECT_TRUE(samePrediction(ps, pf))
                        << b.id << " " << uarch::config(arch).abbrev
                        << " loop=" << loop;
                }
            }
        }
    }
}

TEST(Intern, RepeatedAnalysisSharesRecords)
{
    const auto &b = randomSuite().front();
    bb::BasicBlock first = bb::analyze(b.bytesL, uarch::UArch::SKL);
    bb::BasicBlock second = bb::analyze(b.bytesL, uarch::UArch::SKL);
    ASSERT_EQ(first.insts.size(), second.insts.size());
    for (std::size_t i = 0; i < first.insts.size(); ++i) {
        // Same arena records: pointer-equal annotations, no per-block
        // copies (this is what makes the cold path allocation-free).
        EXPECT_EQ(first.insts[i].dec, second.insts[i].dec);
        EXPECT_EQ(first.insts[i].info, second.insts[i].info);
        EXPECT_EQ(first.insts[i].rw, second.insts[i].rw);
    }
    EXPECT_FALSE(first.ownedRecords);
}

TEST(Intern, MissesBoundedByInstructionUniverse)
{
    const auto &b = randomSuite().back();
    (void)bb::analyze(b.bytesL, uarch::UArch::RKL);
    const auto before =
        analysis::InstInterner::forArch(uarch::UArch::RKL).stats();
    // Re-analyzing the same block cannot create new canonical records.
    (void)bb::analyze(b.bytesL, uarch::UArch::RKL);
    const auto after =
        analysis::InstInterner::forArch(uarch::UArch::RKL).stats();
    EXPECT_EQ(before.misses, after.misses);
    EXPECT_EQ(before.fusedMisses, after.fusedMisses);
    EXPECT_GT(after.hits, before.hits);
}

TEST(Intern, MutableInfoIsCopyOnWrite)
{
    const auto &b = randomSuite().front();
    bb::BasicBlock blk = bb::analyze(b.bytesU, uarch::UArch::SKL);
    bb::BasicBlock copy = blk;

    const int origLatency = blk.insts[0].info->latency;
    copy.mutableInfo(0).latency = origLatency + 7;

    // The copy sees its mutation; the original and the shared arena
    // do not.
    EXPECT_EQ(copy.insts[0].info->latency, origLatency + 7);
    EXPECT_EQ(blk.insts[0].info->latency, origLatency);
    bb::BasicBlock again = bb::analyze(b.bytesU, uarch::UArch::SKL);
    EXPECT_EQ(again.insts[0].info->latency, origLatency);
}

/**
 * Hammer the intern cache from the engine pool: concurrent first-touch
 * interning (misses racing on insert) and concurrent hits, across
 * multiple microarchitectures, with bit-identity against fresh serial
 * analysis. TSan-clean by contract.
 */
TEST(Intern, ConcurrentEngineHammer)
{
    const auto &suite = randomSuite();
    const std::vector<uarch::UArch> arches = {
        uarch::UArch::SNB, uarch::UArch::HSW, uarch::UArch::SKL,
        uarch::UArch::ICL, uarch::UArch::RKL,
    };

    std::vector<engine::Request> batch;
    for (uarch::UArch arch : arches)
        for (const auto &b : suite) {
            batch.push_back({b.bytesU, arch, false, {}});
            batch.push_back({b.bytesL, arch, true, {}});
        }

    std::vector<model::Prediction> reference(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        // Engine requests default to the cheap bound-only path; the
        // fresh-analysis oracle must match that payload depth.
        model::PredictScratch scratch;
        reference[i] = model::predict(
            bb::analyze(batch[i].bytes, batch[i].arch, bb::InternMode::Off),
            batch[i].loop, batch[i].config, scratch, batch[i].payload);
    }

    engine::PredictionEngine::Options opts;
    opts.numThreads = 4;
    opts.cacheEnabled = false; // every pass re-analyzes through the interner
    engine::PredictionEngine eng(opts);

    for (int pass = 0; pass < 3; ++pass) {
        std::vector<model::Prediction> out = eng.predictBatch(batch);
        ASSERT_EQ(out.size(), reference.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_TRUE(samePrediction(out[i], reference[i]))
                << "pass " << pass << " request " << i;
    }
}

/** Raw concurrent internAt on one arch: all threads get equal records. */
TEST(Intern, ConcurrentInternPointerStability)
{
    const auto &b = randomSuite()[1];
    analysis::InstInterner &interner =
        analysis::InstInterner::forArch(uarch::UArch::TGL);

    constexpr int kThreads = 4;
    std::vector<std::vector<const analysis::InstRecord *>> seen(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int rep = 0; rep < 50; ++rep) {
                std::size_t pos = 0;
                std::size_t idx = 0;
                while (pos < b.bytesL.size()) {
                    const analysis::InstRecord *rec = interner.internAt(
                        b.bytesL.data(), b.bytesL.size(), pos);
                    if (rep == 0)
                        seen[t].push_back(rec);
                    else
                        ASSERT_EQ(seen[t][idx], rec);
                    pos += rec->dec.length;
                    ++idx;
                }
            }
        });
    for (auto &th : threads)
        th.join();

    // Canonical records: every thread resolved every instruction to the
    // same arena pointer.
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0], seen[t]);
}

} // namespace
} // namespace facile
