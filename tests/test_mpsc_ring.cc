/**
 * @file
 * MpscRing unit tests (src/server/mpsc_ring.h): FIFO order per
 * producer, full-ring rejection without side effects, wraparound
 * reuse, element destruction on pop, and a multi-producer hammer that
 * drives the exact shape the server uses — N io threads pushing, one
 * collector popping — checking that every element arrives exactly
 * once with its heap payload intact (the acquire/release edge on the
 * cell sequence is the only synchronization).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "server/mpsc_ring.h"

namespace facile::server {
namespace {

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
    EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, SingleThreadFifoAndEmpty)
{
    MpscRing<int> ring(8);
    int out = 0;
    EXPECT_FALSE(ring.tryPop(out));
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ring.tryPush(int(i)));
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(MpscRing, FullRingRejectsWithoutConsumingTheElement)
{
    MpscRing<std::shared_ptr<int>> ring(2);
    ASSERT_TRUE(ring.tryPush(std::make_shared<int>(1)));
    ASSERT_TRUE(ring.tryPush(std::make_shared<int>(2)));

    auto keep = std::make_shared<int>(3);
    EXPECT_FALSE(ring.tryPush(std::move(keep)));
    // A failed push must leave the element untouched: the server
    // answers OVERLOADED from it afterwards.
    ASSERT_TRUE(keep != nullptr);
    EXPECT_EQ(*keep, 3);

    std::shared_ptr<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(*out, 1);
    EXPECT_TRUE(ring.tryPush(std::move(keep))); // slot freed
}

TEST(MpscRing, WrapsAroundManyLaps)
{
    MpscRing<int> ring(4);
    int out = 0;
    for (int lap = 0; lap < 1000; ++lap) {
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(ring.tryPush(lap * 3 + i));
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            EXPECT_EQ(out, lap * 3 + i);
        }
    }
}

TEST(MpscRing, PopReleasesHeapPayloadPromptly)
{
    MpscRing<std::shared_ptr<int>> ring(4);
    auto tracked = std::make_shared<int>(7);
    std::weak_ptr<int> weak = tracked;
    ASSERT_TRUE(ring.tryPush(std::move(tracked)));
    {
        std::shared_ptr<int> out;
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(*out, 7);
    }
    // The popped cell must not keep a copy alive for a whole lap.
    EXPECT_TRUE(weak.expired());
}

/**
 * The server's exact shape: multiple producers, one consumer, bounded
 * ring smaller than the total element count so full-ring rejections
 * and wraparound happen constantly under contention.
 */
TEST(MpscRing, MultiProducerHammerDeliversEveryElementOnce)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 20000;
    MpscRing<std::unique_ptr<std::uint64_t>> ring(64);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&ring, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                auto v = std::make_unique<std::uint64_t>(
                    static_cast<std::uint64_t>(p) * kPerProducer +
                    static_cast<std::uint64_t>(i));
                while (!ring.tryPush(std::move(v)))
                    std::this_thread::yield();
            }
        });

    std::vector<std::uint64_t> got;
    got.reserve(static_cast<std::size_t>(kProducers) * kPerProducer);
    std::vector<std::uint64_t> lastPerProducer(kProducers, 0);
    std::unique_ptr<std::uint64_t> out;
    while (got.size() <
           static_cast<std::size_t>(kProducers) * kPerProducer) {
        if (!ring.tryPop(out)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_TRUE(out != nullptr);
        got.push_back(*out);
    }
    for (auto &t : producers)
        t.join();
    EXPECT_FALSE(ring.tryPop(out));

    // Exactly-once delivery, and FIFO per producer.
    std::set<std::uint64_t> unique(got.begin(), got.end());
    EXPECT_EQ(unique.size(), got.size());
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(),
              static_cast<std::uint64_t>(kProducers) * kPerProducer - 1);
    std::vector<std::uint64_t> nextExpected(kProducers, 0);
    for (std::uint64_t v : got) {
        const auto p = static_cast<std::size_t>(v / kPerProducer);
        const std::uint64_t seq = v % kPerProducer;
        EXPECT_EQ(seq, nextExpected[p]) << "producer " << p;
        nextExpected[p] = seq + 1;
    }
}

} // namespace
} // namespace facile::server
