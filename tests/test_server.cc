/**
 * @file
 * Prediction-server tests: loopback serving over Unix-domain and TCP
 * sockets is bit-identical to serial model::predict across all nine
 * microarchitectures, concurrent clients multiplex correctly through
 * the admission batcher, control ops work, and protocol violations are
 * rejected without poisoning the connection.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <unistd.h>

#include "bhive/generator.h"
#include "facile/component.h"
#include "server/client.h"
#include "server/server.h"

namespace facile::server {
namespace {

using model::Prediction;

const std::vector<bhive::Benchmark> &
suite()
{
    static const auto s = bhive::generateSuite(2024, 2);
    return s;
}

/** Unique-per-test unix socket path. */
std::string
freshUnixPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/facile_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

::testing::AssertionResult
bitIdentical(const Prediction &a, const Prediction &b)
{
    if (std::memcmp(&a.throughput, &b.throughput, sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "throughput " << a.throughput << " vs " << b.throughput;
    if (std::memcmp(a.componentValue.data(), b.componentValue.data(),
                    sizeof(double) * a.componentValue.size()) != 0)
        return ::testing::AssertionFailure() << "componentValue differs";
    if (a.bottlenecks != b.bottlenecks)
        return ::testing::AssertionFailure() << "bottlenecks differ";
    if (a.primaryBottleneck != b.primaryBottleneck)
        return ::testing::AssertionFailure() << "primaryBottleneck differs";
    if (a.criticalChain != b.criticalChain)
        return ::testing::AssertionFailure() << "criticalChain differs";
    if (a.contendedPorts != b.contendedPorts)
        return ::testing::AssertionFailure() << "contendedPorts differ";
    if (a.contendingInsts != b.contendingInsts)
        return ::testing::AssertionFailure() << "contendingInsts differ";
    return ::testing::AssertionSuccess();
}

Prediction
serialPredict(const engine::Request &r)
{
    // Match the request's payload depth (the wire default is the cheap
    // bound-only path; kFlagExplain requests the full payload).
    model::PredictScratch scratch;
    return model::predict(bb::analyze(r.bytes, r.arch), r.loop, r.config,
                          scratch, r.payload);
}

/** Every (benchmark, arch, notion) combination — all nine uarches. */
std::vector<engine::Request>
allArchBatch()
{
    std::vector<engine::Request> reqs;
    for (const auto &b : suite())
        for (uarch::UArch arch : uarch::allUArchs()) {
            reqs.push_back({b.bytesU, arch, false, {}});
            reqs.push_back({b.bytesL, arch, true, {}});
            // Exercise the wire explain flag (full payload on demand).
            reqs.push_back({b.bytesL, arch, true, {},
                            model::Payload::Full});
        }
    return reqs;
}

TEST(Server, StartStopAndControlOps)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.tcpPort = 0; // ephemeral
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();
    EXPECT_GT(server.tcpPort(), 0);

    auto client = Client::connectUnix(opts.unixPath);
    client.ping();
    ServerStats s = client.stats();
    EXPECT_GE(s.requests, 1u);
    EXPECT_EQ(s.predictions, 0u);
    EXPECT_EQ(s.connectionsAccepted, 1u);

    server.stop();
    // A second stop must be a no-op, and restarting is not required.
    server.stop();
}

TEST(Server, UnixLoopbackBitIdenticalAllUArches)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto reqs = allArchBatch();
    auto client = Client::connectUnix(opts.unixPath);
    auto out = client.predictMany(reqs);
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(reqs[i])))
            << "request " << i << " arch "
            << uarch::config(reqs[i].arch).abbrev;
    server.stop();
}

TEST(Server, TcpLoopbackBitIdentical)
{
    ServerOptions opts;
    opts.tcpPort = 0;
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectTcp("127.0.0.1", server.tcpPort());
    for (const auto &b : suite()) {
        engine::Request r{b.bytesL, uarch::UArch::SKL, true, {}};
        auto p = client.predict(r.bytes, r.arch, r.loop, r.config);
        EXPECT_TRUE(bitIdentical(p, serialPredict(r)));
    }
    server.stop();
}

TEST(Server, ConcurrentClientsBitIdentical)
{
    // >= 4 concurrent clients hammering the same server; the admission
    // batcher interleaves their requests into shared engine batches
    // and must route every response to its owner (matched by id).
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.tcpPort = 0;
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto reqs = allArchBatch();
    std::vector<Prediction> expected(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        expected[i] = serialPredict(reqs[i]);

    constexpr int kClients = 5;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                // Mix transports; rotate each client's starting offset
                // so concurrent batches interleave different requests.
                auto client =
                    (c % 2 == 0)
                        ? Client::connectUnix(opts.unixPath)
                        : Client::connectTcp("127.0.0.1",
                                             server.tcpPort());
                std::vector<engine::Request> mine;
                mine.reserve(reqs.size());
                for (std::size_t i = 0; i < reqs.size(); ++i)
                    mine.push_back(
                        reqs[(i + static_cast<std::size_t>(c) * 7) %
                             reqs.size()]);
                auto out = client.predictMany(mine);
                for (std::size_t i = 0; i < mine.size(); ++i)
                    if (!bitIdentical(
                            out[i],
                            expected[(i + static_cast<std::size_t>(c) *
                                              7) %
                                     reqs.size()]))
                        ++failures;
            } catch (const std::exception &e) {
                ADD_FAILURE() << "client " << c << ": " << e.what();
                ++failures;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    ServerStats s = server.stats();
    EXPECT_EQ(s.predictions,
              static_cast<std::uint64_t>(kClients) * reqs.size());
    EXPECT_GE(s.batches, 1u);
    EXPECT_GE(s.predictionCacheHits, 1u); // clients repeat blocks
    server.stop();
}

TEST(Server, MalformedBlockFollowsCrashProtocol)
{
    // Undecodable bytes are a valid request: the engine's crash
    // protocol answers throughput 0 rather than an error.
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    auto p = client.predict({0x0f, 0xff, 0xff}, uarch::UArch::SKL, false);
    EXPECT_EQ(p.throughput, 0.0);

    // The connection stays usable afterwards.
    const auto &b = suite().front();
    engine::Request good{b.bytesU, uarch::UArch::SKL, false, {}};
    EXPECT_TRUE(bitIdentical(
        client.predict(good.bytes, good.arch, good.loop),
        serialPredict(good)));
    server.stop();
}

TEST(Server, BadArchIsRejectedWithoutPoisoningConnection)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_THROW(client.predict({0x90}, static_cast<uarch::UArch>(42),
                                false),
                 std::runtime_error);
    // Framing survived: the next well-formed request still works.
    client.ping();
    server.stop();
}

TEST(Server, AblationConfigTravelsTheWire)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    const auto &b = suite().front();
    for (int c = 0; c < model::kNumComponents; ++c) {
        auto cfg =
            model::ModelConfig::without(static_cast<model::Component>(c));
        engine::Request r{b.bytesU, uarch::UArch::SKL, false, cfg};
        EXPECT_TRUE(bitIdentical(
            client.predict(r.bytes, r.arch, r.loop, cfg),
            serialPredict(r)))
            << "config without component " << c;
    }
    server.stop();
}

TEST(Protocol, ConfigBitsRoundTrip)
{
    for (int c = 0; c < model::kNumComponents; ++c) {
        auto cfg =
            model::ModelConfig::only(static_cast<model::Component>(c));
        auto back = model::ModelConfig::fromBits(cfg.packBits());
        EXPECT_EQ(back.packBits(), cfg.packBits());
    }
    model::ModelConfig simple;
    simple.simpleDec = true;
    simple.simplePredec = true;
    EXPECT_EQ(model::ModelConfig::fromBits(simple.packBits()).packBits(),
              simple.packBits());
}

TEST(Protocol, PredictionRoundTripPreservesBits)
{
    const auto &b = suite().front();
    Prediction p =
        serialPredict({b.bytesL, uarch::UArch::RKL, true, {}});
    std::vector<std::uint8_t> buf;
    appendPredictResponse(buf, 77, p);
    ResponseHeader h = parseResponseHeader(buf.data());
    EXPECT_EQ(h.id, 77u);
    EXPECT_EQ(h.status, static_cast<std::uint8_t>(Status::Ok));
    ASSERT_EQ(buf.size(), kResponseHeaderSize + h.len);
    auto back = decodePredictPayload(buf.data() + kResponseHeaderSize,
                                     h.len);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(bitIdentical(*back, p));
}

TEST(Protocol, TruncatedPayloadIsRejected)
{
    const auto &b = suite().front();
    Prediction p = serialPredict({b.bytesU, uarch::UArch::SKL, false, {}});
    std::vector<std::uint8_t> buf;
    appendPredictResponse(buf, 1, p);
    ResponseHeader h = parseResponseHeader(buf.data());
    EXPECT_FALSE(decodePredictPayload(buf.data() + kResponseHeaderSize,
                                      h.len > 0 ? h.len - 1 : 0)
                     .has_value());
}

} // namespace
} // namespace facile::server
