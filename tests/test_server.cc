/**
 * @file
 * Prediction-server tests: loopback serving over Unix-domain and TCP
 * sockets is bit-identical to serial model::predict across all nine
 * microarchitectures, concurrent clients multiplex correctly through
 * the admission batcher, control ops work, and protocol violations are
 * rejected without poisoning the connection.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "analysis/snapshot.h"
#include "bhive/generator.h"
#include "facile/component.h"
#include "server/client.h"
#include "server/net_util.h"
#include "server/resilient_client.h"
#include "server/server.h"

namespace facile::server {
namespace {

using model::Prediction;

const std::vector<bhive::Benchmark> &
suite()
{
    static const auto s = bhive::generateSuite(2024, 2);
    return s;
}

/** Unique-per-test unix socket path. */
std::string
freshUnixPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/facile_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

::testing::AssertionResult
bitIdentical(const Prediction &a, const Prediction &b)
{
    if (std::memcmp(&a.throughput, &b.throughput, sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "throughput " << a.throughput << " vs " << b.throughput;
    if (std::memcmp(a.componentValue.data(), b.componentValue.data(),
                    sizeof(double) * a.componentValue.size()) != 0)
        return ::testing::AssertionFailure() << "componentValue differs";
    if (a.bottlenecks != b.bottlenecks)
        return ::testing::AssertionFailure() << "bottlenecks differ";
    if (a.primaryBottleneck != b.primaryBottleneck)
        return ::testing::AssertionFailure() << "primaryBottleneck differs";
    if (a.criticalChain != b.criticalChain)
        return ::testing::AssertionFailure() << "criticalChain differs";
    if (a.contendedPorts != b.contendedPorts)
        return ::testing::AssertionFailure() << "contendedPorts differ";
    if (a.contendingInsts != b.contendingInsts)
        return ::testing::AssertionFailure() << "contendingInsts differ";
    return ::testing::AssertionSuccess();
}

Prediction
serialPredict(const engine::Request &r)
{
    // Match the request's payload depth (the wire default is the cheap
    // bound-only path; kFlagExplain requests the full payload).
    model::PredictScratch scratch;
    return model::predict(bb::analyze(r.bytes, r.arch), r.loop, r.config,
                          scratch, r.payload);
}

/** Every (benchmark, arch, notion) combination — all nine uarches. */
std::vector<engine::Request>
allArchBatch()
{
    std::vector<engine::Request> reqs;
    for (const auto &b : suite())
        for (uarch::UArch arch : uarch::allUArchs()) {
            reqs.push_back({b.bytesU, arch, false, {}});
            reqs.push_back({b.bytesL, arch, true, {}});
            // Exercise the wire explain flag (full payload on demand).
            reqs.push_back({b.bytesL, arch, true, {},
                            model::Payload::Full});
        }
    return reqs;
}

TEST(Server, StartStopAndControlOps)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.tcpPort = 0; // ephemeral
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();
    EXPECT_GT(server.tcpPort(), 0);

    auto client = Client::connectUnix(opts.unixPath);
    client.ping();
    ServerStats s = client.stats();
    EXPECT_GE(s.requests, 1u);
    EXPECT_EQ(s.predictions, 0u);
    EXPECT_EQ(s.connectionsAccepted, 1u);

    server.stop();
    // A second stop must be a no-op, and restarting is not required.
    server.stop();
}

TEST(Server, UnixLoopbackBitIdenticalAllUArches)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto reqs = allArchBatch();
    auto client = Client::connectUnix(opts.unixPath);
    auto out = client.predictMany(reqs);
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(reqs[i])))
            << "request " << i << " arch "
            << uarch::config(reqs[i].arch).abbrev;
    server.stop();
}

TEST(Server, TcpLoopbackBitIdentical)
{
    ServerOptions opts;
    opts.tcpPort = 0;
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectTcp("127.0.0.1", server.tcpPort());
    for (const auto &b : suite()) {
        engine::Request r{b.bytesL, uarch::UArch::SKL, true, {}};
        auto p = client.predict(r.bytes, r.arch, r.loop, r.config);
        EXPECT_TRUE(bitIdentical(p, serialPredict(r)));
    }
    server.stop();
}

TEST(Server, ConcurrentClientsBitIdentical)
{
    // >= 4 concurrent clients hammering the same server; the admission
    // batcher interleaves their requests into shared engine batches
    // and must route every response to its owner (matched by id).
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.tcpPort = 0;
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto reqs = allArchBatch();
    std::vector<Prediction> expected(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        expected[i] = serialPredict(reqs[i]);

    constexpr int kClients = 5;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                // Mix transports; rotate each client's starting offset
                // so concurrent batches interleave different requests.
                auto client =
                    (c % 2 == 0)
                        ? Client::connectUnix(opts.unixPath)
                        : Client::connectTcp("127.0.0.1",
                                             server.tcpPort());
                std::vector<engine::Request> mine;
                mine.reserve(reqs.size());
                for (std::size_t i = 0; i < reqs.size(); ++i)
                    mine.push_back(
                        reqs[(i + static_cast<std::size_t>(c) * 7) %
                             reqs.size()]);
                auto out = client.predictMany(mine);
                for (std::size_t i = 0; i < mine.size(); ++i)
                    if (!bitIdentical(
                            out[i],
                            expected[(i + static_cast<std::size_t>(c) *
                                              7) %
                                     reqs.size()]))
                        ++failures;
            } catch (const std::exception &e) {
                ADD_FAILURE() << "client " << c << ": " << e.what();
                ++failures;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    ServerStats s = server.stats();
    EXPECT_EQ(s.predictions,
              static_cast<std::uint64_t>(kClients) * reqs.size());
    EXPECT_GE(s.batches, 1u);
    EXPECT_GE(s.predictionCacheHits, 1u); // clients repeat blocks
    server.stop();
}

TEST(Server, MalformedBlockFollowsCrashProtocol)
{
    // Undecodable bytes are a valid request: the engine's crash
    // protocol answers throughput 0 rather than an error.
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    auto p = client.predict({0x0f, 0xff, 0xff}, uarch::UArch::SKL, false);
    EXPECT_EQ(p.throughput, 0.0);

    // The connection stays usable afterwards.
    const auto &b = suite().front();
    engine::Request good{b.bytesU, uarch::UArch::SKL, false, {}};
    EXPECT_TRUE(bitIdentical(
        client.predict(good.bytes, good.arch, good.loop),
        serialPredict(good)));
    server.stop();
}

TEST(Server, BadArchIsRejectedWithoutPoisoningConnection)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_THROW(client.predict({0x90}, static_cast<uarch::UArch>(42),
                                false),
                 std::runtime_error);
    // Framing survived: the next well-formed request still works.
    client.ping();
    server.stop();
}

TEST(Server, AblationConfigTravelsTheWire)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    const auto &b = suite().front();
    for (int c = 0; c < model::kNumComponents; ++c) {
        auto cfg =
            model::ModelConfig::without(static_cast<model::Component>(c));
        engine::Request r{b.bytesU, uarch::UArch::SKL, false, cfg};
        EXPECT_TRUE(bitIdentical(
            client.predict(r.bytes, r.arch, r.loop, cfg),
            serialPredict(r)))
            << "config without component " << c;
    }
    server.stop();
}

// ---- resource limits & backpressure (ServerOptions quotas) ----------------

/** Blocking raw-socket connect to a unix path (no Client framing). */
int
rawConnectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr),
        0);
    return fd;
}

/** Read one complete response frame off a raw socket (blocking). */
bool
rawReadResponse(int fd, ResponseHeader &h,
                std::vector<std::uint8_t> &payload)
{
    std::uint8_t header[kResponseHeaderSize];
    std::size_t got = 0;
    while (got < sizeof header) {
        ssize_t n = ::recv(fd, header + got, sizeof header - got, 0);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    h = parseResponseHeader(header);
    payload.resize(h.len);
    got = 0;
    while (got < h.len) {
        ssize_t n = ::recv(fd, payload.data() + got, h.len - got, 0);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    return true;
}

TEST(ServerLimits, SlowlorisConnectionIsClosedWhileHealthyOnesServe)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.readTimeoutMs = 150;
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    // The attacker: sends half a request header and then nothing —
    // the classic slowloris hold.
    int slow = rawConnectUnix(opts.unixPath);
    const std::uint8_t half[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_TRUE(sendAll(slow, half, sizeof half));

    // A healthy client keeps serving bit-identical predictions while
    // the slow connection ages out.
    auto client = Client::connectUnix(opts.unixPath);
    const auto &b = suite().front();
    engine::Request good{b.bytesU, uarch::UArch::SKL, false, {}};
    EXPECT_TRUE(bitIdentical(
        client.predict(good.bytes, good.arch, good.loop),
        serialPredict(good)));

    // The read deadline closes the mid-frame connection: recv sees
    // EOF well within a few deadline periods.
    std::uint8_t byte;
    ssize_t n = ::recv(slow, &byte, 1, 0); // blocks until server closes
    EXPECT_EQ(n, 0) << "slowloris connection was not closed";
    ::close(slow);

    // Still healthy afterwards, and the shed is observable.
    EXPECT_TRUE(bitIdentical(
        client.predict(good.bytes, good.arch, good.loop),
        serialPredict(good)));
    EXPECT_GE(client.stats().readTimeouts, 1u);

    // A connection idling *between* complete frames is never closed:
    // this client has been idle > readTimeoutMs by now and still works.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    client.ping();
    server.stop();
}

TEST(ServerLimits, HandshakeSilenceIsAlsoDeadlined)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.readTimeoutMs = 150;
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    // Connect and send nothing at all: the deadline applies from
    // accept, not from the first byte.
    int silent = rawConnectUnix(opts.unixPath);
    std::uint8_t byte;
    EXPECT_EQ(::recv(silent, &byte, 1, 0), 0)
        << "silent connection was not closed";
    ::close(silent);

    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_GE(client.stats().readTimeouts, 1u);
    server.stop();
}

TEST(ServerLimits, InFlightQuotaAnswersOverloadedAndRecovers)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.maxInFlightPerConn = 2;
    opts.batchWindowUs = 200000; // park admitted requests for 200ms
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    engine::Request req{b.bytesU, uarch::UArch::SKL, false, {}};

    // Six pipelined requests against a quota of two: the four beyond
    // the quota are answered Overloaded while the admitted two park in
    // the admission window; all six get a response on one connection.
    int fd = rawConnectUnix(opts.unixPath);
    std::vector<std::uint8_t> frames;
    for (std::uint64_t id = 1; id <= 6; ++id)
        appendPredictRequest(frames, id, req);
    ASSERT_TRUE(sendAll(fd, frames.data(), frames.size()));

    int ok = 0, overloaded = 0;
    const Prediction expect = serialPredict(req);
    for (int i = 0; i < 6; ++i) {
        ResponseHeader h;
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(rawReadResponse(fd, h, payload));
        if (h.status == static_cast<std::uint8_t>(Status::Ok)) {
            auto p = decodePredictPayload(payload.data(), h.len);
            ASSERT_TRUE(p.has_value());
            EXPECT_TRUE(bitIdentical(*p, expect));
            ++ok;
        } else {
            EXPECT_EQ(h.status,
                      static_cast<std::uint8_t>(Status::Overloaded));
            EXPECT_EQ(h.len, 0u);
            ++overloaded;
        }
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(overloaded, 4);
    ::close(fd);

    // The quota frees as requests complete: a fresh window succeeds.
    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_TRUE(bitIdentical(
        client.predict(req.bytes, req.arch, req.loop), expect));
    EXPECT_EQ(client.stats().overloadedConn, 4u);
    server.stop();
}

TEST(ServerLimits, BoundedQueueShedsExcessAndServesTheRest)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.maxPending = 3;
    opts.batchWindowUs = 200000; // hold the queue full for 200ms
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    engine::Request req{b.bytesL, uarch::UArch::ICL, true, {}};

    int fd = rawConnectUnix(opts.unixPath);
    std::vector<std::uint8_t> frames;
    for (std::uint64_t id = 1; id <= 8; ++id)
        appendPredictRequest(frames, id, req);
    ASSERT_TRUE(sendAll(fd, frames.data(), frames.size()));

    int ok = 0, overloaded = 0;
    const Prediction expect = serialPredict(req);
    for (int i = 0; i < 8; ++i) {
        ResponseHeader h;
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(rawReadResponse(fd, h, payload));
        if (h.status == static_cast<std::uint8_t>(Status::Ok)) {
            auto p = decodePredictPayload(payload.data(), h.len);
            ASSERT_TRUE(p.has_value());
            EXPECT_TRUE(bitIdentical(*p, expect));
            ++ok;
        } else {
            EXPECT_EQ(h.status,
                      static_cast<std::uint8_t>(Status::Overloaded));
            ++overloaded;
        }
    }
    // Exactly maxPending requests got through; the flood was shed
    // with explicit backpressure, not buffered without bound.
    EXPECT_EQ(ok, 3);
    EXPECT_EQ(overloaded, 5);
    ::close(fd);

    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_GE(client.stats().overloadedQueue, 5u);
    server.stop();
}

TEST(ServerLimits, ConnectionCapShedsAtAccept)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.maxConnections = 1;
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto first = Client::connectUnix(opts.unixPath);
    first.ping(); // occupies the single slot

    // The second connection is accepted and immediately closed — the
    // peer observes EOF, never a response.
    int second = rawConnectUnix(opts.unixPath);
    std::uint8_t byte;
    EXPECT_EQ(::recv(second, &byte, 1, 0), 0)
        << "over-cap connection was not shed";
    ::close(second);

    // The surviving connection is unaffected.
    const auto &b = suite().front();
    engine::Request req{b.bytesU, uarch::UArch::SKL, false, {}};
    EXPECT_TRUE(bitIdentical(
        first.predict(req.bytes, req.arch, req.loop),
        serialPredict(req)));
    EXPECT_GE(first.stats().connectionsShed, 1u);
    server.stop();
}

TEST(ServerLimits, ClientThrowsTypedOverloadedError)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.maxInFlightPerConn = 1;
    opts.batchWindowUs = 200000;
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    std::vector<engine::Request> reqs(
        4, engine::Request{b.bytesU, uarch::UArch::SKL, false, {}});
    auto client = Client::connectUnix(opts.unixPath);
    try {
        client.predictMany(reqs); // 4 pipelined vs quota of 1
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &e) {
        EXPECT_EQ(e.status(), Status::Overloaded);
    }
    server.stop();
}

// ---- event-loop data plane: adversarial interleavings ---------------------

TEST(ServerEventLoop, ByteAtATimeRequestsServeBitIdentical)
{
    // The cruelest read fragmentation: every byte of three pipelined
    // frames arrives in its own recv. The per-connection FrameParser
    // must reassemble them across epoll wakeups without desyncing.
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    engine::Request req{b.bytesL, uarch::UArch::SKL, true, {}};
    const Prediction expect = serialPredict(req);

    int fd = rawConnectUnix(opts.unixPath);
    std::vector<std::uint8_t> frames;
    for (std::uint64_t id = 1; id <= 3; ++id)
        appendPredictRequest(frames, id, req);
    for (std::uint8_t byte : frames)
        ASSERT_TRUE(sendAll(fd, &byte, 1));

    for (int i = 0; i < 3; ++i) {
        ResponseHeader h;
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(rawReadResponse(fd, h, payload));
        EXPECT_EQ(h.status, static_cast<std::uint8_t>(Status::Ok));
        auto p = decodePredictPayload(payload.data(), h.len);
        ASSERT_TRUE(p.has_value());
        EXPECT_TRUE(bitIdentical(*p, expect));
    }
    ::close(fd);
    server.stop();
}

TEST(ServerEventLoop, CoalescedFloodShedsExactlyAndSurvivorsBitIdentical)
{
    // 40 frames coalesced into ONE send against an admission bound of
    // 16 held open by a long window: the server must read the burst in
    // as few recvs as the kernel delivers, admit exactly the bound
    // through the ring, shed the rest with OVERLOADED, and the
    // surviving predictions must be bit-identical to serial.
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.maxPending = 16;
    opts.batchWindowUs = 200000;
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    engine::Request req{b.bytesU, uarch::UArch::ICL, false, {}};
    const Prediction expect = serialPredict(req);

    int fd = rawConnectUnix(opts.unixPath);
    std::vector<std::uint8_t> frames;
    for (std::uint64_t id = 1; id <= 40; ++id)
        appendPredictRequest(frames, id, req);
    ASSERT_TRUE(sendAll(fd, frames.data(), frames.size()));

    int ok = 0, overloaded = 0;
    for (int i = 0; i < 40; ++i) {
        ResponseHeader h;
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(rawReadResponse(fd, h, payload));
        if (h.status == static_cast<std::uint8_t>(Status::Ok)) {
            auto p = decodePredictPayload(payload.data(), h.len);
            ASSERT_TRUE(p.has_value());
            EXPECT_TRUE(bitIdentical(*p, expect));
            ++ok;
        } else {
            EXPECT_EQ(h.status,
                      static_cast<std::uint8_t>(Status::Overloaded));
            ++overloaded;
        }
    }
    EXPECT_EQ(ok, 16);
    EXPECT_EQ(overloaded, 24);
    ::close(fd);

    // Every shed is attributed to a counter: the count gate or the
    // ring's own capacity backstop.
    auto client = Client::connectUnix(opts.unixPath);
    ServerStats s = client.stats();
    EXPECT_EQ(s.overloadedQueue + s.ringFull, 24u);
    EXPECT_GE(s.epollWakeups, 1u);
    server.stop();
}

TEST(ServerEventLoop, PartialWriteResumesViaEpollout)
{
    // Ask for more response bytes than the socket can buffer while
    // refusing to read: the batch flush must hit EAGAIN, queue the
    // tail (shortWrites counter), and resume on EPOLLOUT once we
    // drain — with every response byte-identical and in order.
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    // Full interpretability payload: the largest response shape.
    engine::Request req{b.bytesL, uarch::UArch::SKL, true, {},
                        model::Payload::Full};
    const Prediction expect = serialPredict(req);

    constexpr int kRequests = 8000; // response volume >> socket buffer
    int fd = rawConnectUnix(opts.unixPath);
    std::vector<std::uint8_t> frames;
    for (std::uint64_t id = 1; id <= kRequests; ++id)
        appendPredictRequest(frames, id, req);
    std::thread sender([&] {
        EXPECT_TRUE(sendAll(fd, frames.data(), frames.size()));
    });

    // Let the server finish every batch while we sit on a full socket
    // buffer; only then start draining, so the tail must travel
    // through the WriteQueue + EPOLLOUT path.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    std::vector<bool> seen(kRequests, false);
    for (int i = 0; i < kRequests; ++i) {
        ResponseHeader h;
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(rawReadResponse(fd, h, payload));
        ASSERT_EQ(h.status, static_cast<std::uint8_t>(Status::Ok));
        ASSERT_GE(h.id, 1u);
        ASSERT_LE(h.id, static_cast<std::uint64_t>(kRequests));
        ASSERT_FALSE(seen[h.id - 1]) << "duplicate id " << h.id;
        seen[h.id - 1] = true;
        auto p = decodePredictPayload(payload.data(), h.len);
        ASSERT_TRUE(p.has_value());
        ASSERT_TRUE(bitIdentical(*p, expect)) << "response " << i;
    }
    sender.join();
    ::close(fd);

    auto client = Client::connectUnix(opts.unixPath);
    ServerStats s = client.stats();
    EXPECT_GE(s.shortWrites, 1u)
        << "expected at least one EAGAIN-queued flush";
    server.stop();
}

TEST(ServerEventLoop, StatsCountersTravelTheWire)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    client.ping();
    ServerStats s = client.stats();
    // epoll wakeups necessarily happened to serve the two frames; the
    // other event-loop counters decode (zero) rather than truncating
    // the payload.
    EXPECT_GE(s.epollWakeups, 1u);
    EXPECT_EQ(s.ringFull, 0u);
    server.stop();
}

// ---- graceful degradation: drain mode, HEALTH, self-healing client --------

TEST(ServerDrain, ShedsPredictsKeepsControlOpsAndRefusesNewConnections)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    const auto &b = suite().front();
    engine::Request req{b.bytesU, uarch::UArch::SKL, false, {}};

    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_EQ(client.health(), HealthState::Ready);
    EXPECT_TRUE(bitIdentical(client.predict(req.bytes, req.arch, req.loop),
                             serialPredict(req)));
    EXPECT_FALSE(server.draining());

    server.drain();
    EXPECT_TRUE(server.draining());

    // Control ops keep answering on established connections: routers
    // need HEALTH to observe the transition and operators need STATS
    // and SNAPSHOT during the grace window.
    EXPECT_EQ(client.health(), HealthState::Draining);
    EXPECT_NO_THROW(client.ping());

    // New PREDICTs are shed with the typed retryable status.
    try {
        client.predict(req.bytes, req.arch, req.loop);
        FAIL() << "expected ProtocolError(Draining)";
    } catch (const ProtocolError &e) {
        EXPECT_EQ(e.status(), Status::Draining);
        EXPECT_TRUE(e.retryable());
    }

    // New connections are refused at accept (EOF, never a response).
    int late = rawConnectUnix(opts.unixPath);
    std::uint8_t byte;
    EXPECT_EQ(::recv(late, &byte, 1, 0), 0)
        << "connection during drain was not refused";
    ::close(late);

    // Both sheds travel the wire in the append-only STATS payload.
    ServerStats s = client.stats();
    EXPECT_GE(s.drainSheds, 1u);
    EXPECT_GE(s.connectionsShed, 1u);
    // The client-side resilience counters are zeros from a server.
    EXPECT_EQ(s.reconnects, 0u);
    EXPECT_EQ(s.retriedRequests, 0u);
    server.stop();
}

TEST(ServerDrain, StartClearsDrainMode)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();
    server.drain();
    server.stop();
    server.start();
    EXPECT_FALSE(server.draining());
    auto client = Client::connectUnix(opts.unixPath);
    EXPECT_EQ(client.health(), HealthState::Ready);
    const auto &b = suite().front();
    engine::Request req{b.bytesU, uarch::UArch::SKL, false, {}};
    EXPECT_TRUE(bitIdentical(client.predict(req.bytes, req.arch, req.loop),
                             serialPredict(req)));
    server.stop();
}

TEST(ClientSigpipe, ClosedPeerThrowsTypedTransportErrorNotSignal)
{
    // Regression for the classic client killer: writing to a peer
    // that vanished raises SIGPIPE, whose default disposition
    // terminates the process. The client must surface a typed
    // TransportError instead (MSG_NOSIGNAL on every send) — if this
    // test survives to the assertions, the protection held.
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto client = Client::connectUnix(opts.unixPath);
    client.ping();
    server.stop(); // peer gone, possibly with RST in flight

    bool threw = false;
    for (int i = 0; i < 10 && !threw; ++i) {
        try {
            client.ping(); // send into the dead socket until it EPIPEs
        } catch (const TransportError &) {
            threw = true;
        }
    }
    EXPECT_TRUE(threw) << "dead peer never surfaced as TransportError";
}

TEST(SelfHeal, ResilientClientMatchesSerialAndMergesLocalCounters)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    auto rc = ResilientClient::forUnix(opts.unixPath);
    EXPECT_FALSE(rc.connected()) << "construction must not dial";

    std::vector<engine::Request> reqs;
    for (const auto &b : suite())
        reqs.push_back({b.bytesL, uarch::UArch::ICL, true, {}});
    const auto out = rc.predictMany(reqs);
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(reqs[i]))) << i;
    EXPECT_TRUE(rc.connected());

    // An undisturbed run heals nothing and retries nothing.
    EXPECT_EQ(rc.selfHealStats().reconnects, 0u);
    EXPECT_EQ(rc.selfHealStats().retriedRequests, 0u);
    EXPECT_EQ(rc.stats().reconnects, 0u);
    server.stop();
}

TEST(SelfHeal, ReconnectsAndReplaysAcrossServerRestart)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;

    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(2);
    policy.maxAttempts = 64;
    policy.opDeadline = std::chrono::seconds(30);

    const auto &b = suite().front();
    std::vector<engine::Request> reqs(
        3, engine::Request{b.bytesU, uarch::UArch::SKL, false, {}});
    const Prediction expect = serialPredict(reqs[0]);

    auto rc = ResilientClient::forUnix(opts.unixPath, policy);
    {
        PredictionServer server(opts);
        server.start();
        for (const auto &p : rc.predictMany(reqs))
            EXPECT_TRUE(bitIdentical(p, expect));
        server.stop();
    }
    // Server gone: the held connection is dead and the socket file is
    // unlinked. Bring up a fresh instance on the same path and the
    // client must reconnect + replay without caller-visible failure.
    PredictionServer server2(opts);
    std::thread restarter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        server2.start();
    });
    for (const auto &p : rc.predictMany(reqs))
        EXPECT_TRUE(bitIdentical(p, expect));
    restarter.join();
    EXPECT_GE(rc.selfHealStats().reconnects, 1u);
    EXPECT_GE(rc.selfHealStats().retriedRequests, reqs.size());
    // The merged STATS view carries the client-side counters.
    ServerStats merged = rc.stats();
    EXPECT_GE(merged.reconnects, 1u);
    EXPECT_GE(merged.retriedRequests, reqs.size());
    server2.stop();
}

TEST(SelfHeal, DrainingServerYieldsTypedRetryableFailure)
{
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    engine::PredictionEngine eng({.numThreads = 1});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    RetryPolicy policy;
    policy.maxAttempts = 2;
    policy.initialBackoff = std::chrono::milliseconds(1);
    auto rc = ResilientClient::forUnix(opts.unixPath, policy);
    rc.ping(); // dial while the server still accepts
    server.drain();

    const auto &b = suite().front();
    try {
        rc.predict(b.bytesU, uarch::UArch::SKL, false);
        FAIL() << "expected ProtocolError(Draining) after retries";
    } catch (const ProtocolError &e) {
        EXPECT_EQ(e.status(), Status::Draining);
    }
    EXPECT_GE(rc.selfHealStats().drainedPeers, 1u);
    EXPECT_GE(rc.selfHealStats().retries, 1u);
    server.stop();
}

TEST(SelfHeal, DeadlineBoundsRetriesAgainstAbsentServer)
{
    RetryPolicy policy;
    policy.maxAttempts = 1000;
    policy.initialBackoff = std::chrono::milliseconds(10);
    policy.opDeadline = std::chrono::milliseconds(150);
    policy.breakerThreshold = 1000; // keep the breaker out of this test
    auto rc = ResilientClient::forUnix(freshUnixPath(), policy);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(rc.ping(), DeadlineError);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(10))
        << "deadline did not bound the retry loop";
}

TEST(SelfHeal, CircuitBreakerFailsFastWhenCooldownExceedsDeadline)
{
    RetryPolicy policy;
    policy.maxAttempts = 2;
    policy.initialBackoff = std::chrono::milliseconds(1);
    policy.breakerThreshold = 2;
    policy.breakerCooldown = std::chrono::minutes(10);
    policy.opDeadline = std::chrono::milliseconds(500);
    auto rc = ResilientClient::forUnix(freshUnixPath(), policy);

    // First op burns through the attempts and opens the breaker.
    EXPECT_THROW(rc.ping(), TransportError);
    EXPECT_GE(rc.selfHealStats().breakerOpens, 1u);

    // Second op cannot outwait a 10-minute cooldown inside a 500 ms
    // deadline: it must fail fast, not hammer the dead endpoint.
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(rc.ping(), CircuitOpenError);
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(400));
}

TEST(ServerWarmStart, TornPrimaryFallsBackAndCountsIt)
{
    const std::string snap =
        "/tmp/facile_warm_" + std::to_string(::getpid()) + ".bin";
    for (int g = 0; g < analysis::kSnapshotGenerations; ++g)
        std::remove(analysis::snapshotGenerationPath(snap, g).c_str());

    std::vector<engine::Request> reqs;
    for (const auto &b : suite())
        reqs.push_back({b.bytesL, uarch::UArch::SKL, true, {}});

    std::vector<Prediction> expected;
    ServerOptions opts;
    opts.unixPath = freshUnixPath();
    opts.snapshotPath = snap;
    opts.snapshotLoadPath = snap;
    {
        engine::PredictionEngine eng({.numThreads = 2});
        ServerOptions o = opts;
        o.engine = &eng;
        PredictionServer server(o);
        server.start();
        auto client = Client::connectUnix(o.unixPath);
        expected = client.predictMany(reqs);
        ASSERT_TRUE(client.snapshot());
        ASSERT_TRUE(client.snapshot()); // rotates the first save to .g1
        server.stop();
    }

    // Tear the primary the way a mid-write SIGKILL would (bypassing
    // the atomic writer on purpose).
    {
        std::FILE *f = std::fopen(snap.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("torn", f);
        std::fclose(f);
    }

    // A fresh server + engine must come up warm from .g1, count the
    // fallback, and serve bit-identically.
    {
        engine::PredictionEngine eng({.numThreads = 2});
        ServerOptions o = opts;
        o.engine = &eng;
        PredictionServer server(o);
        server.start();
        auto client = Client::connectUnix(o.unixPath);
        const auto out = client.predictMany(reqs);
        ASSERT_EQ(out.size(), expected.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_TRUE(bitIdentical(out[i], expected[i])) << i;
        ServerStats s = client.stats();
        EXPECT_GE(s.snapshotFallbacks, 1u)
            << "generation fallback was not counted over the wire";
        server.stop();
    }

    // Total loss (no generation loadable) must cold-start, not fail.
    for (int g = 0; g < analysis::kSnapshotGenerations; ++g)
        std::remove(analysis::snapshotGenerationPath(snap, g).c_str());
    {
        engine::PredictionEngine eng({.numThreads = 1});
        ServerOptions o = opts;
        o.engine = &eng;
        PredictionServer server(o);
        EXPECT_NO_THROW(server.start());
        auto client = Client::connectUnix(o.unixPath);
        EXPECT_GE(client.stats().snapshotFallbacks, 1u);
        server.stop();
    }
}

TEST(Protocol, ConfigBitsRoundTrip)
{
    for (int c = 0; c < model::kNumComponents; ++c) {
        auto cfg =
            model::ModelConfig::only(static_cast<model::Component>(c));
        auto back = model::ModelConfig::fromBits(cfg.packBits());
        EXPECT_EQ(back.packBits(), cfg.packBits());
    }
    model::ModelConfig simple;
    simple.simpleDec = true;
    simple.simplePredec = true;
    EXPECT_EQ(model::ModelConfig::fromBits(simple.packBits()).packBits(),
              simple.packBits());
}

TEST(Protocol, PredictionRoundTripPreservesBits)
{
    const auto &b = suite().front();
    Prediction p =
        serialPredict({b.bytesL, uarch::UArch::RKL, true, {}});
    std::vector<std::uint8_t> buf;
    appendPredictResponse(buf, 77, p);
    ResponseHeader h = parseResponseHeader(buf.data());
    EXPECT_EQ(h.id, 77u);
    EXPECT_EQ(h.status, static_cast<std::uint8_t>(Status::Ok));
    ASSERT_EQ(buf.size(), kResponseHeaderSize + h.len);
    auto back = decodePredictPayload(buf.data() + kResponseHeaderSize,
                                     h.len);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(bitIdentical(*back, p));
}

TEST(Protocol, TruncatedPayloadIsRejected)
{
    const auto &b = suite().front();
    Prediction p = serialPredict({b.bytesU, uarch::UArch::SKL, false, {}});
    std::vector<std::uint8_t> buf;
    appendPredictResponse(buf, 1, p);
    ResponseHeader h = parseResponseHeader(buf.data());
    EXPECT_FALSE(decodePredictPayload(buf.data() + kResponseHeaderSize,
                                      h.len > 0 ? h.len - 1 : 0)
                     .has_value());
}

} // namespace
} // namespace facile::server
