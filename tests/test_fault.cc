/**
 * @file
 * Deterministic fault-injection unit tests (src/testing/fault.h): one
 * test per wrapped syscall site, each proving the EINTR/short-IO loop
 * around that site actually recovers — injected signals and partial
 * transfers must be invisible to callers, byte for byte. The whole
 * file skips itself in builds without -DFACILE_FAULT_INJECT=ON (the
 * hooks are compile-time no-ops there; CI runs both flavors).
 */
#include <gtest/gtest.h>

#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bhive/generator.h"
#include "facile/component.h"
#include "server/client.h"
#include "server/net_util.h"
#include "server/server.h"
#include "server/write_queue.h"
#include "testing/fault.h"

namespace facile::server {
namespace {

#define SKIP_WITHOUT_FAULT_INJECTION()                                     \
    do {                                                                   \
        if (!testing::kFaultInjection)                                     \
            GTEST_SKIP() << "built without FACILE_FAULT_INJECT";           \
    } while (0)

/** Scoped clean slate: every test starts and ends with no faults armed. */
struct FaultTest : ::testing::Test {
    void SetUp() override { testing::resetFaults(); }
    void TearDown() override { testing::resetFaults(); }
};

std::string
faultUnixPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/facile_fault_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

/** Read exactly @p len bytes from @p fd (blocking socketpair end). */
std::vector<std::uint8_t>
recvExactly(int fd, std::size_t len)
{
    std::vector<std::uint8_t> got(len);
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, got.data() + off, len - off, 0);
        if (n < 0 && errno == EINTR)
            continue;
        EXPECT_GT(n, 0) << "peer closed early at " << off;
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
    got.resize(off);
    return got;
}

std::vector<std::uint8_t>
patternBytes(std::size_t len)
{
    std::vector<std::uint8_t> v(len);
    for (std::size_t i = 0; i < len; ++i)
        v[i] = static_cast<std::uint8_t>(i * 131 + 7);
    return v;
}

TEST_F(FaultTest, RegistryCountsHitsAndHonorsTheArmedWindow)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    // Hits 0..9; injection armed for hits [3, 3+4).
    testing::armFault("unit.site", {.firstHit = 3, .count = 4,
                                    .err = EINTR});
    int injected = 0;
    for (int i = 0; i < 10; ++i)
        injected += testing::faultPoint("unit.site", 0).err == EINTR;
    EXPECT_EQ(injected, 4);
    EXPECT_EQ(testing::faultHits("unit.site"), 10u);
    EXPECT_EQ(testing::faultsFired("unit.site"), 4u);

    // disarm stops injection but keeps counting hits.
    testing::disarmFault("unit.site");
    EXPECT_FALSE(testing::faultPoint("unit.site", 0).injected());
    EXPECT_EQ(testing::faultHits("unit.site"), 11u);

    // reset zeroes everything.
    testing::resetFaults();
    EXPECT_EQ(testing::faultHits("unit.site"), 0u);
    EXPECT_EQ(testing::faultsFired("unit.site"), 0u);
}

TEST_F(FaultTest, RegistryClampPassesThroughForShortIo)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    testing::armFault("unit.clamp", {.firstHit = 0, .count = 1,
                                     .clampBytes = 3});
    const auto fa = testing::faultPoint("unit.clamp", 100);
    EXPECT_EQ(fa.err, 0);
    EXPECT_EQ(fa.clamp, 3u);
    EXPECT_TRUE(fa.injected());
}

TEST_F(FaultTest, ChaosStreamIsDeterministicPerSeed)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    auto run = [](std::uint64_t seed) {
        testing::resetFaults();
        testing::armChaos(seed, 4);
        std::vector<int> pattern;
        for (int i = 0; i < 64; ++i) {
            const auto fa = testing::faultPoint("chaos.site", 64);
            pattern.push_back(fa.err != 0 ? 1
                              : fa.clamp != static_cast<std::size_t>(-1)
                                  ? 2
                                  : 0);
        }
        return pattern;
    };
    const auto a = run(42), b = run(42), c = run(43);
    EXPECT_EQ(a, b) << "same seed must inject at the same points";
    EXPECT_NE(a, c) << "different seeds should diverge";
    // ~1-in-4 odds over 64 hits: statistically certain to fire.
    EXPECT_GT(std::accumulate(a.begin(), a.end(), 0), 0);
}

// ---- net_util.h sites ------------------------------------------------------

TEST_F(FaultTest, SendAllRetriesEintrAndReassemblesShortWrites)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    const auto payload = patternBytes(4096);

    // Two EINTRs, then every remaining attempt clamped to 17 bytes.
    testing::armFault("net.send", {.firstHit = 0, .count = 2,
                                   .err = EINTR});
    std::thread rx([&] {
        EXPECT_EQ(recvExactly(sp[1], payload.size()), payload);
    });
    ASSERT_TRUE(sendAll(sp[0], payload.data(), payload.size()));
    rx.join();
    EXPECT_EQ(testing::faultsFired("net.send"), 2u);

    testing::armFault("net.send",
                      {.firstHit = testing::faultHits("net.send"),
                       .count = UINT64_MAX, .clampBytes = 17});
    std::thread rx2([&] {
        EXPECT_EQ(recvExactly(sp[1], payload.size()), payload);
    });
    ASSERT_TRUE(sendAll(sp[0], payload.data(), payload.size()));
    rx2.join();
    // 4096 bytes at <= 17 per syscall: the loop really iterated.
    EXPECT_GE(testing::faultsFired("net.send"), 4096u / 17u);
    ::close(sp[0]);
    ::close(sp[1]);
}

TEST_F(FaultTest, SendAllReportsRealErrorsAfterEintrStorm)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    std::uint8_t byte = 0x5a;
    testing::armFault("net.send", {.firstHit = 0, .count = 3,
                                   .err = EINTR});
    ::close(sp[1]); // peer gone: after the EINTRs, send must fail
    EXPECT_FALSE(sendAll(sp[0], &byte, 1));
    EXPECT_GE(testing::faultHits("net.send"), 4u);
    ::close(sp[0]);
}

TEST_F(FaultTest, WakeFdSignalAndDrainSurviveEintr)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    const int efd = ::eventfd(0, EFD_NONBLOCK);
    ASSERT_GE(efd, 0);

    // A lost wakeup here would leave the loop asleep with queued work;
    // the write must retry through injected EINTRs until it lands.
    testing::armFault("net.wake_write", {.firstHit = 0, .count = 3,
                                         .err = EINTR});
    signalWakeFd(efd);
    EXPECT_EQ(testing::faultsFired("net.wake_write"), 3u);

    // ... and the drain side must not abandon a readable counter on
    // EINTR, or level-triggered epoll would spin on it forever.
    testing::armFault("net.wake_read", {.firstHit = 0, .count = 2,
                                        .err = EINTR});
    drainWakeFd(efd);
    std::uint64_t v = 0;
    EXPECT_EQ(::read(efd, &v, sizeof v), -1);
    EXPECT_EQ(errno, EAGAIN) << "counter was not fully drained";
    ::close(efd);
}

// ---- write_queue.h ---------------------------------------------------------

TEST_F(FaultTest, WriteQueueRetriesEintrAndResumesInjectedShortWrites)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    ASSERT_TRUE(setNonBlocking(sp[0]));
    const auto a = patternBytes(1500), b = patternBytes(700);

    // EINTR twice, then clamp every sendmsg to 64 bytes: the gather
    // loop must keep resubmitting the unsent tail in order.
    testing::armFault("wq.sendmsg", {.firstHit = 0, .count = 2,
                                     .err = EINTR});
    WriteQueue wq;
    iovec iov[2] = {{const_cast<std::uint8_t *>(a.data()), a.size()},
                    {const_cast<std::uint8_t *>(b.data()), b.size()}};
    std::thread rx([&] {
        auto got = recvExactly(sp[1], a.size() + b.size());
        ASSERT_EQ(got.size(), a.size() + b.size());
        EXPECT_EQ(std::memcmp(got.data(), a.data(), a.size()), 0);
        EXPECT_EQ(std::memcmp(got.data() + a.size(), b.data(), b.size()),
                  0);
    });
    EXPECT_EQ(wq.writeGather(sp[0], iov, 2), WriteQueue::Result::Drained);
    EXPECT_TRUE(wq.empty());
    rx.join();

    testing::armFault("wq.sendmsg",
                      {.firstHit = testing::faultHits("wq.sendmsg"),
                       .count = UINT64_MAX, .clampBytes = 64});
    std::thread rx2([&] {
        EXPECT_EQ(recvExactly(sp[1], a.size()), a);
    });
    iovec one = {const_cast<std::uint8_t *>(a.data()), a.size()};
    EXPECT_EQ(wq.writeGather(sp[0], &one, 1),
              WriteQueue::Result::Drained);
    rx2.join();
    EXPECT_GE(testing::faultsFired("wq.sendmsg"), 1500u / 64u);
    ::close(sp[0]);
    ::close(sp[1]);
}

TEST_F(FaultTest, WriteQueueTreatsInjectedEpipeAsPeerGone)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    ASSERT_TRUE(setNonBlocking(sp[0]));
    testing::armFault("wq.sendmsg", {.firstHit = 0, .count = 1,
                                     .err = EPIPE});
    WriteQueue wq;
    std::uint8_t byte = 1;
    iovec one = {&byte, 1};
    EXPECT_EQ(wq.writeGather(sp[0], &one, 1),
              WriteQueue::Result::PeerGone);
    ::close(sp[0]);
    ::close(sp[1]);
}

// ---- client + server sites, end to end -------------------------------------

struct Loopback {
    explicit Loopback(ServerOptions o = {}) : opts(std::move(o))
    {
        opts.unixPath = faultUnixPath();
        opts.engine = &eng;
        server.emplace(opts);
        server->start();
    }
    ~Loopback()
    {
        if (server)
            server->stop();
    }
    ServerOptions opts;
    engine::PredictionEngine eng{{.numThreads = 2}};
    std::optional<PredictionServer> server;
};

std::vector<engine::Request>
smallBatch()
{
    static const auto suite = bhive::generateSuite(99, 2);
    std::vector<engine::Request> reqs;
    for (const auto &b : suite)
        reqs.push_back({b.bytesL, uarch::UArch::SKL, true, {}});
    return reqs;
}

std::vector<model::Prediction>
serialBatch(const std::vector<engine::Request> &reqs)
{
    model::PredictScratch scratch;
    std::vector<model::Prediction> out;
    for (const auto &r : reqs)
        out.push_back(model::predict(bb::analyze(r.bytes, r.arch),
                                     r.loop, r.config, scratch));
    return out;
}

void
expectBitIdentical(const std::vector<model::Prediction> &got,
                   const std::vector<model::Prediction> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(std::memcmp(&got[i].throughput, &want[i].throughput,
                              sizeof(double)),
                  0)
            << "block " << i;
}

TEST_F(FaultTest, ClientSurvivesEintrOnConnectSendRecvAndPoll)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    Loopback lb;
    const auto reqs = smallBatch();
    const auto expected = serialBatch(reqs);

    // EINTR during connect(): completion must be picked up via
    // poll+SO_ERROR (finishInterruptedConnect), not surfaced.
    testing::armFault("client.connect", {.firstHit = 0, .count = 1,
                                         .err = EINTR});
    auto client = Client::connectUnix(lb.opts.unixPath);
    EXPECT_EQ(testing::faultsFired("client.connect"), 1u);

    // EINTR + short IO across every client-side loop, all at once.
    testing::armFault("client.send", {.firstHit = 1, .count = 4,
                                      .err = EINTR});
    testing::armFault("client.recv", {.firstHit = 0, .count = UINT64_MAX,
                                      .clampBytes = 11});
    testing::armFault("client.poll", {.firstHit = 2, .count = 3,
                                      .err = EINTR});
    expectBitIdentical(client.predictMany(reqs), expected);
    EXPECT_GE(testing::faultsFired("client.recv"), reqs.size())
        << "11-byte reads cannot carry a response frame each";
}

TEST_F(FaultTest, ServerSurvivesEintrOnAcceptEpollRecvAndCollectorPoll)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    Loopback lb;
    const auto reqs = smallBatch();
    const auto expected = serialBatch(reqs);

    testing::armFault("server.accept", {.firstHit = 0, .count = 2,
                                        .err = EINTR});
    testing::armFault("server.epoll",
                      {.firstHit = testing::faultHits("server.epoll"),
                       .count = 8, .err = EINTR});
    testing::armFault("server.recv", {.firstHit = 0, .count = UINT64_MAX,
                                      .clampBytes = 13});
    testing::armFault("server.collector_poll",
                      {.firstHit =
                           testing::faultHits("server.collector_poll"),
                       .count = 8, .err = EINTR});
    auto client = Client::connectUnix(lb.opts.unixPath);
    expectBitIdentical(client.predictMany(reqs), expected);
    EXPECT_EQ(testing::faultsFired("server.accept"), 2u);
    EXPECT_GE(testing::faultsFired("server.recv"), reqs.size());
}

TEST_F(FaultTest, ChaosEintrAndShortIoEverywhereStaysBitIdentical)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    Loopback lb;
    const auto reqs = smallBatch();
    const auto expected = serialBatch(reqs);
    // Every wrapped site in the process rolls 1-in-3 dice per hit.
    testing::armChaos(0xfac11e01u, 3);
    auto client = Client::connectUnix(lb.opts.unixPath);
    for (int pass = 0; pass < 3; ++pass)
        expectBitIdentical(client.predictMany(reqs), expected);
}

} // namespace
} // namespace facile::server
