/**
 * @file
 * Tests for the binary corpus format (src/corpus/corpus.h): writer →
 * reader round trips fuzzed over randomized corpora, header count
 * semantics (including never-closed writers), and rejection of every
 * class of malformed input — truncation at arbitrary points, bad
 * magic, unsupported versions, oversized blocks, unknown flags, and
 * record-count mismatches.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "support/rng.h"

namespace facile {
namespace {

std::string
tmpPath(const char *tag)
{
    return "test_corpus_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".bin";
}

corpus::Entry
randomEntry(Rng &rng)
{
    corpus::Entry e;
    e.arch = static_cast<uarch::UArch>(
        rng.below(static_cast<std::uint32_t>(uarch::allUArchs().size())));
    e.loop = rng.below(2) != 0;
    e.hasMeasured = rng.below(2) != 0;
    if (e.hasMeasured) {
        // Exercise exact bit preservation, including weird values.
        const std::uint32_t pick = rng.below(8);
        if (pick == 0)
            e.measured = 0.0;
        else if (pick == 1)
            e.measured = -0.0;
        else
            e.measured =
                static_cast<double>(rng.next64()) / 3.7e12;
    }
    e.bytes.resize(rng.below(65));
    for (auto &b : e.bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
    return e;
}

bool
sameEntry(const corpus::Entry &a, const corpus::Entry &b)
{
    return a.arch == b.arch && a.loop == b.loop &&
           a.hasMeasured == b.hasMeasured && a.bytes == b.bytes &&
           std::memcmp(&a.measured, &b.measured, sizeof(double)) == 0;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(buf.data(), 1, buf.size(), f), buf.size());
    std::fclose(f);
    return buf;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &buf)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
    std::fclose(f);
}

TEST(Corpus, WriterReaderFuzzRoundTrip)
{
    Rng rng(0xc0fe5u);
    const std::string path = tmpPath("fuzz");
    for (int round = 0; round < 50; ++round) {
        std::vector<corpus::Entry> wrote;
        const std::uint32_t n = rng.below(40);
        {
            corpus::Writer w(path);
            for (std::uint32_t i = 0; i < n; ++i) {
                wrote.push_back(randomEntry(rng));
                w.append(wrote.back());
            }
            EXPECT_EQ(w.count(), n);
            w.close();
        }
        corpus::Reader r(path);
        EXPECT_EQ(r.declaredCount(), n);
        corpus::Entry e;
        std::size_t i = 0;
        while (r.next(e)) {
            ASSERT_LT(i, wrote.size());
            EXPECT_TRUE(sameEntry(e, wrote[i])) << "round " << round
                                                << " entry " << i;
            ++i;
        }
        EXPECT_EQ(i, wrote.size());
    }
    std::remove(path.c_str());
}

TEST(Corpus, UnclosedWriterStreamsWithUnknownCount)
{
    const std::string path = tmpPath("unclosed");
    Rng rng(7);
    std::vector<corpus::Entry> wrote;
    {
        corpus::Writer w(path);
        for (int i = 0; i < 5; ++i) {
            wrote.push_back(randomEntry(rng));
            w.append(wrote.back());
        }
        w.close();
    }
    // Simulate a writer that never reached close(): count still the
    // kUnknownCount sentinel. The stream must read fully regardless.
    std::vector<std::uint8_t> file = slurp(path);
    const std::uint64_t unknown = corpus::kUnknownCount;
    std::memcpy(file.data() + 16, &unknown, 8);
    spit(path, file);

    corpus::Reader r(path);
    EXPECT_EQ(r.declaredCount(), corpus::kUnknownCount);
    corpus::Entry e;
    std::size_t i = 0;
    while (r.next(e))
        EXPECT_TRUE(sameEntry(e, wrote[i++]));
    EXPECT_EQ(i, wrote.size());
    std::remove(path.c_str());
}

TEST(Corpus, RejectsMalformedFiles)
{
    const std::string path = tmpPath("bad");
    Rng rng(11);
    {
        corpus::Writer w(path);
        for (int i = 0; i < 4; ++i)
            w.append(randomEntry(rng));
        w.close();
    }
    const std::vector<std::uint8_t> good = slurp(path);

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[3] ^= 0x40;
        spit(path, bad);
        EXPECT_THROW(corpus::Reader r(path), corpus::CorpusError);
    }
    // Unsupported version.
    {
        std::vector<std::uint8_t> bad = good;
        bad[8] = 99;
        spit(path, bad);
        EXPECT_THROW(corpus::Reader r(path), corpus::CorpusError);
    }
    // Header truncation.
    {
        std::vector<std::uint8_t> bad(good.begin(), good.begin() + 10);
        spit(path, bad);
        EXPECT_THROW(corpus::Reader r(path), corpus::CorpusError);
    }
    // Count mismatch (header promises one more record than exists).
    {
        std::vector<std::uint8_t> bad = good;
        std::uint64_t count;
        std::memcpy(&count, bad.data() + 16, 8);
        ++count;
        std::memcpy(bad.data() + 16, &count, 8);
        spit(path, bad);
        corpus::Reader r(path);
        corpus::Entry e;
        EXPECT_THROW(
            {
                while (r.next(e)) {
                }
            },
            corpus::CorpusError);
    }
    // Truncation at every byte inside the record stream must throw
    // from next() (count no longer matches, or a record is cut short)
    // — never yield a partial entry.
    for (std::size_t cut = 25; cut < good.size(); cut += 3) {
        std::vector<std::uint8_t> bad(good.begin(),
                                      good.begin() +
                                          static_cast<std::ptrdiff_t>(cut));
        spit(path, bad);
        corpus::Reader r(path);
        corpus::Entry e;
        EXPECT_THROW(
            {
                while (r.next(e)) {
                }
            },
            corpus::CorpusError)
            << "cut at " << cut;
    }
    // Bad arch byte in the first record.
    {
        std::vector<std::uint8_t> bad = good;
        bad[24] = 0xee;
        spit(path, bad);
        corpus::Reader r(path);
        corpus::Entry e;
        EXPECT_THROW(r.next(e), corpus::CorpusError);
    }
    // Unknown flag bits.
    {
        std::vector<std::uint8_t> bad = good;
        bad[25] |= 0x80;
        spit(path, bad);
        corpus::Reader r(path);
        corpus::Entry e;
        EXPECT_THROW(r.next(e), corpus::CorpusError);
    }
    std::remove(path.c_str());
}

TEST(Corpus, InMemoryReaderMatchesFileReader)
{
    Rng rng(0xfeedbeefu);
    const std::string path = tmpPath("memreader");
    std::vector<corpus::Entry> written;
    {
        corpus::Writer w(path);
        for (int i = 0; i < 100; ++i) {
            written.push_back(randomEntry(rng));
            w.append(written.back());
        }
        w.close();
    }
    const std::vector<std::uint8_t> img = slurp(path);
    std::remove(path.c_str());

    corpus::Reader r(img.data(), img.size());
    EXPECT_EQ(r.declaredCount(), written.size());
    corpus::Entry e;
    std::size_t i = 0;
    while (r.next(e)) {
        ASSERT_LT(i, written.size());
        EXPECT_TRUE(sameEntry(e, written[i]));
        ++i;
    }
    EXPECT_EQ(i, written.size());
}

TEST(Corpus, InMemoryReaderRejectsMalformedImages)
{
    // Garbage: bad magic.
    const std::vector<std::uint8_t> garbage(64, 0xAA);
    EXPECT_THROW(corpus::Reader(garbage.data(), garbage.size()),
                 corpus::CorpusError);

    // Empty image: truncated header.
    EXPECT_THROW(corpus::Reader(garbage.data(), 0),
                 corpus::CorpusError);

    // Valid header, truncated record.
    const std::string path = tmpPath("memtrunc");
    {
        corpus::Writer w(path);
        corpus::Entry e;
        e.bytes = {0x90, 0x90, 0x90};
        w.append(e);
        w.close();
    }
    std::vector<std::uint8_t> img = slurp(path);
    std::remove(path.c_str());
    img.resize(img.size() - 2);
    corpus::Reader r(img.data(), img.size());
    corpus::Entry e;
    EXPECT_THROW(r.next(e), corpus::CorpusError);
}

TEST(Corpus, WriterRejectsOversizedBlocks)
{
    const std::string path = tmpPath("oversize");
    corpus::Writer w(path);
    corpus::Entry e;
    e.bytes.resize(corpus::kMaxCorpusBlockBytes + 1);
    EXPECT_THROW(w.append(e), corpus::CorpusError);
    e.bytes.resize(corpus::kMaxCorpusBlockBytes);
    EXPECT_NO_THROW(w.append(e));
    w.close();
    std::remove(path.c_str());
}

} // namespace
} // namespace facile
