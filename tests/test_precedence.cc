/**
 * @file
 * Precedence-constraint model tests: known dependence chains, flag and
 * partial-register behavior, and a property test checking the optimum-
 * cycle-ratio engine against brute-force cycle enumeration on random
 * graphs.
 */
#include <gtest/gtest.h>

#include <functional>

#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "facile/precedence.h"
#include "isa/builder.h"
#include "support/rng.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

TEST(Precedence, SimpleAddChain)
{
    // add rax, rax: loop-carried latency 1.
    bb::BasicBlock blk = blockOf({make(Mnemonic::ADD, {R(RAX), R(RAX)})});
    EXPECT_NEAR(precedence(blk).throughput, 1.0, 1e-9);
}

TEST(Precedence, ImulChain)
{
    bb::BasicBlock blk = blockOf({make(Mnemonic::IMUL, {R(RAX), R(RAX)})});
    EXPECT_NEAR(precedence(blk).throughput, 3.0, 1e-9);
}

TEST(Precedence, ChainAcrossInstructions)
{
    // imul(3) -> add(1) -> loop-carried: 4 cycles / 1 iteration.
    std::vector<Inst> insts = {
        make(Mnemonic::IMUL, {R(RAX), R(RBX)}),
        make(Mnemonic::ADD, {R(RBX), R(RAX)}),
    };
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 4.0, 1e-9);
}

TEST(Precedence, ParallelChainsTakeMax)
{
    std::vector<Inst> insts = {
        make(Mnemonic::IMUL, {R(RAX), R(RAX)}),  // 3-cycle chain
        make(Mnemonic::ADD, {R(RBX), R(RBX)}),   // 1-cycle chain
    };
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 3.0, 1e-9);
}

TEST(Precedence, ZeroIdiomBreaksChain)
{
    std::vector<Inst> insts = {
        make(Mnemonic::XOR, {R(RAX), R(RAX)}),
        make(Mnemonic::IMUL, {R(RAX), R(RBX)}),
    };
    // rax is rewritten from scratch each iteration: no loop-carried
    // cycle through rax.
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 0.0, 1e-9);
}

TEST(Precedence, MovBreaksChainOnlyLogically)
{
    // mov rax, rbx ; add rax, rax: rax's chain is refreshed from rbx
    // each iteration -> no cycle; rbx is never written -> no cycle.
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {R(RAX), R(RBX)}),
        make(Mnemonic::ADD, {R(RAX), R(RAX)}),
    };
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 0.0, 1e-9);
}

TEST(Precedence, LoadLatencyOnAddressRegs)
{
    // Pointer chase: mov rax, [rax] is a pure load µop; the chain runs
    // at the L1 load-to-use latency (4 on SKL).
    bb::BasicBlock blk =
        blockOf({make(Mnemonic::MOV, {R(RAX), M(mem(RAX))})});
    EXPECT_NEAR(precedence(blk).throughput, 4.0, 1e-9);
}

TEST(Precedence, LoadLatencyDiffersOnIcl)
{
    bb::BasicBlock blk =
        blockOf({make(Mnemonic::MOV, {R(RAX), M(mem(RAX))})}, UArch::ICL);
    EXPECT_NEAR(precedence(blk).throughput, 5.0, 1e-9);
}

TEST(Precedence, LoadOpChainsAtLoadPlusComputeLatency)
{
    // add rax, [rax]: load (4) + ALU (1) on SKL = 5.
    bb::BasicBlock blk =
        blockOf({make(Mnemonic::ADD, {R(RAX), M(mem(RAX))})});
    EXPECT_NEAR(precedence(blk).throughput, 5.0, 1e-9);
}

TEST(Precedence, FlagChainThroughAdc)
{
    // adc rax, rbx: reads CF, writes CF: loop-carried flag chain with
    // the instruction's latency.
    bb::BasicBlock blk = blockOf({make(Mnemonic::ADC, {R(RAX), R(RBX)})});
    EXPECT_NEAR(precedence(blk).throughput, 1.0, 1e-9);
}

TEST(Precedence, IncDoesNotChainThroughCf)
{
    // inc writes only the SPAZO group; a CF consumer (jb) must chain to
    // an older CF producer, not to inc.
    std::vector<Inst> insts = {
        make(Mnemonic::INC, {R(RAX)}),
        makeCC(Mnemonic::JCC, Cond::B, {I(-2, 1)}),
    };
    // No CF writer in the block: jb's read is loop-invariant; the only
    // cycle is rax's inc chain (1.0).
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 1.0, 1e-9);
}

TEST(Precedence, StackEngineHidesRspChain)
{
    // push/pop pairs do not serialize on rsp updates.
    std::vector<Inst> insts = {
        make(Mnemonic::PUSH, {R(RAX)}),
        make(Mnemonic::POP, {R(RBX)}),
    };
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 0.0, 1e-9);
}

TEST(Precedence, CriticalChainIdentifiesInstructions)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {R(RBX), R(RBX)}),   // independent 1-cycle
        make(Mnemonic::IMUL, {R(RAX), R(RAX)}),  // critical 3-cycle
    };
    PrecedenceResult r = precedence(blockOf(insts));
    ASSERT_FALSE(r.criticalChain.empty());
    EXPECT_EQ(r.criticalChain[0], 1);
}

TEST(Precedence, FmaAccumulatorChain)
{
    // vfmadd231pd acc, x, y: loop-carried through the accumulator at
    // FMA latency (4 on SKL).
    bb::BasicBlock blk = blockOf(
        {make(Mnemonic::VFMADD231PD, {R(XMM0), R(XMM1), R(XMM2)})});
    EXPECT_NEAR(precedence(blk).throughput, 4.0, 1e-9);
}

TEST(Precedence, MultiIterationCycle)
{
    // Two interleaved chains, each spanning 2 iterations:
    //   xchg-free swap via three movs is eliminated on SKL; use adds
    //   that write the *other* register: a cycle of latency 2 across 2
    //   iterations = 1.0.
    std::vector<Inst> insts = {
        make(Mnemonic::LEA, {R(RAX), M(mem(RBX, 1))}),
        make(Mnemonic::LEA, {R(RBX), M(mem(RAX, 1))}),
    };
    // rax <- rbx (prev write, intra), rbx <- rax (this iteration):
    // cycle latency 2 over 1 iteration.
    EXPECT_NEAR(precedence(blockOf(insts)).throughput, 2.0, 1e-9);
}

// ---- maxCycleRatio engine ----------------------------------------------

TEST(CycleRatio, EmptyGraph)
{
    EXPECT_DOUBLE_EQ(maxCycleRatio(0, {}).ratio, 0.0);
    EXPECT_DOUBLE_EQ(maxCycleRatio(3, {}).ratio, 0.0);
}

TEST(CycleRatio, SelfLoop)
{
    CycleRatioResult r = maxCycleRatio(1, {{0, 0, 3.0, 1}});
    EXPECT_NEAR(r.ratio, 3.0, 1e-9);
    EXPECT_EQ(r.cycleNodes.size(), 1u);
}

TEST(CycleRatio, TwoCyclesPicksMax)
{
    std::vector<RatioEdge> edges = {
        {0, 1, 1.0, 0}, {1, 0, 1.0, 1}, // ratio 2
        {2, 3, 5.0, 0}, {3, 2, 1.0, 2}, // ratio 2 over 2 iterations = 3
    };
    EXPECT_NEAR(maxCycleRatio(4, edges).ratio, 3.0, 1e-9);
}

TEST(CycleRatio, AcyclicIsZero)
{
    std::vector<RatioEdge> edges = {{0, 1, 9.0, 1}, {1, 2, 9.0, 1}};
    EXPECT_DOUBLE_EQ(maxCycleRatio(3, edges).ratio, 0.0);
}

TEST(CycleRatio, HowardMatchesLawlerOnRandomGraphs)
{
    // The two optimum-cycle-ratio engines must agree.
    facile::Rng rng(777);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = 2 + static_cast<int>(rng.below(10));
        std::vector<RatioEdge> edges;
        const int m = 1 + static_cast<int>(rng.below(20));
        for (int e = 0; e < m; ++e) {
            edges.push_back({static_cast<int>(rng.below(n)),
                             static_cast<int>(rng.below(n)),
                             static_cast<double>(rng.below(16)),
                             1 + static_cast<int>(rng.below(2))});
        }
        CycleRatioResult howard = maxCycleRatioHoward(n, edges);
        CycleRatioResult lawler = maxCycleRatioLawler(n, edges);
        EXPECT_NEAR(howard.ratio, lawler.ratio, 1e-6) << "trial " << trial;
    }
}

TEST(CycleRatio, HowardOnDependenceGraphs)
{
    // Both engines on real dependence graphs from generated blocks.
    const auto &suite = facile::bhive::generateSuite(2024, 6);
    for (const auto &b : suite) {
        bb::BasicBlock blk = bb::analyze(b.bytesL, UArch::SKL);
        // precedence() uses Howard via maxCycleRatio; nothing to compare
        // here beyond smoke, so rebuild edges indirectly by checking
        // determinism and non-negativity.
        double tp1 = precedence(blk).throughput;
        double tp2 = precedence(blk).throughput;
        EXPECT_DOUBLE_EQ(tp1, tp2) << b.id;
        EXPECT_GE(tp1, 0.0) << b.id;
    }
}

TEST(CycleRatio, MatchesBruteForceOnRandomGraphs)
{
    facile::Rng rng(321);
    for (int trial = 0; trial < 60; ++trial) {
        const int n = 2 + static_cast<int>(rng.below(6));
        std::vector<RatioEdge> edges;
        const int m = 1 + static_cast<int>(rng.below(12));
        for (int e = 0; e < m; ++e) {
            int from = static_cast<int>(rng.below(n));
            int to = static_cast<int>(rng.below(n));
            double w = static_cast<double>(rng.below(8));
            int cnt = static_cast<int>(rng.below(3));
            edges.push_back({from, to, w, cnt});
        }
        // Discard graphs with zero-count cycles (excluded by the
        // dependence-graph construction; the ratio is unbounded there).
        // Detect them with a DFS over count-0 edges.
        std::vector<std::vector<int>> zeroAdj(n);
        for (const auto &e : edges)
            if (e.count == 0)
                zeroAdj[e.from].push_back(e.to);
        bool zeroCycle = false;
        std::vector<int> state(n, 0);
        std::function<void(int)> dfs = [&](int v) {
            state[v] = 1;
            for (int w : zeroAdj[v]) {
                if (state[w] == 1)
                    zeroCycle = true;
                else if (state[w] == 0)
                    dfs(w);
            }
            state[v] = 2;
        };
        for (int v = 0; v < n; ++v)
            if (state[v] == 0)
                dfs(v);
        if (zeroCycle)
            continue;

        // Brute force: enumerate simple cycles via DFS paths.
        double best = 0.0;
        std::vector<int> stackNodes;
        std::vector<char> onPath(n, 0);
        std::function<void(int, int, double, int)> explore =
            [&](int start, int v, double w, int cnt) {
                for (const auto &e : edges) {
                    if (e.from != v)
                        continue;
                    if (e.to == start && cnt + e.count > 0) {
                        best = std::max(best, (w + e.weight) /
                                                  (cnt + e.count));
                    } else if (!onPath[e.to] && e.to > start) {
                        onPath[e.to] = 1;
                        explore(start, e.to, w + e.weight, cnt + e.count);
                        onPath[e.to] = 0;
                    }
                }
            };
        for (int s = 0; s < n; ++s) {
            onPath.assign(n, 0);
            onPath[s] = 1;
            explore(s, s, 0.0, 0);
        }

        EXPECT_NEAR(maxCycleRatio(n, edges).ratio, best, 1e-6)
            << "trial " << trial;
    }
}

} // namespace
} // namespace facile::model
