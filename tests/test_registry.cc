/**
 * @file
 * Componentization oracle: the registry pipeline must be bit-identical
 * to the pre-refactor monolithic model::predict.
 *
 * The reference below is the pre-refactor combination logic, kept
 * verbatim (eager evaluation, hardwired component calls through the
 * public per-component entry points). Fuzzed bhive::generator blocks
 * are predicted across all nine microarchitectures and the Table 3
 * ablation configurations, under both throughput notions, and every
 * field of the Prediction — bit patterns of throughput and
 * componentValue, the bottleneck classification, and the
 * interpretability payload (eager and filled on demand via explain())
 * — must match the reference exactly.
 *
 * Also pins the registry structure itself: per-arch component sets,
 * view resolution of ablation flags, and the cheapUpperBound contract
 * (upper bounds must dominate the exact bounds).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bhive/generator.h"
#include "eval/harness.h"
#include "facile/component.h"
#include "facile/dec.h"
#include "facile/ports.h"
#include "facile/precedence.h"
#include "facile/predec.h"
#include "facile/predictor.h"
#include "facile/simple_components.h"
#include "isa/builder.h"
#include "uarch/config.h"

namespace facile::model {
namespace {

using eval::samePrediction;

// ---- pre-refactor reference (verbatim combination logic) ------------------

namespace reference {

void
record(Prediction &p, Component c, double value)
{
    p.componentValue[static_cast<int>(c)] = value;
    p.throughput = std::max(p.throughput, value);
}

void
finalize(Prediction &p)
{
    static const Component priority[] = {
        Component::Predec, Component::Dec,        Component::DSB,
        Component::LSD,    Component::Issue,      Component::Ports,
        Component::Precedence,
    };
    bool primarySet = false;
    for (Component c : priority) {
        double v = p.componentValue[static_cast<int>(c)];
        if (std::isnan(v))
            continue;
        if (v >= p.throughput - 1e-9 && p.throughput > 0.0) {
            p.bottlenecks.push_back(c);
            if (!primarySet) {
                p.primaryBottleneck = c;
                primarySet = true;
            }
        }
    }
}

void
backEndBounds(Prediction &p, const bb::BasicBlock &blk,
              const ModelConfig &config)
{
    if (config.useIssue)
        record(p, Component::Issue, issue(blk));
    if (config.usePorts) {
        PortsResult pr = ports(blk);
        record(p, Component::Ports, pr.throughput);
        p.contendedPorts = pr.bottleneckPorts;
        p.contendingInsts = std::move(pr.contendingInsts);
    }
    if (config.usePrecedence) {
        PrecedenceResult pr = precedence(blk);
        record(p, Component::Precedence, pr.throughput);
        p.criticalChain = std::move(pr.criticalChain);
    }
}

Prediction
predictUnrolled(const bb::BasicBlock &blk, const ModelConfig &config)
{
    Prediction p;
    if (config.usePredec)
        record(p, Component::Predec,
               config.simplePredec ? simplePredec(blk) : predec(blk, true));
    if (config.useDec)
        record(p, Component::Dec,
               config.simpleDec ? simpleDec(blk) : dec(blk));
    backEndBounds(p, blk, config);
    finalize(p);
    return p;
}

Prediction
predictLoop(const bb::BasicBlock &blk, const ModelConfig &config)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    Prediction p;

    const bool jccAffected =
        cfg.jccErratum && blk.touchesJccErratumBoundary();
    if (jccAffected) {
        if (config.usePredec)
            record(p, Component::Predec,
                   config.simplePredec ? simplePredec(blk)
                                       : predec(blk, false));
        if (config.useDec)
            record(p, Component::Dec,
                   config.simpleDec ? simpleDec(blk) : dec(blk));
    } else if (cfg.lsdEnabled && config.useLsd && lsdEligible(blk)) {
        record(p, Component::LSD, lsd(blk));
    } else if (config.useDsb) {
        record(p, Component::DSB, dsb(blk));
    }

    backEndBounds(p, blk, config);
    finalize(p);
    return p;
}

Prediction
predict(const bb::BasicBlock &blk, bool loop, const ModelConfig &config)
{
    return loop ? reference::predictLoop(blk, config)
                : reference::predictUnrolled(blk, config);
}

} // namespace reference

// ---- fuzzed bit-identity oracle -------------------------------------------

const std::vector<bhive::Benchmark> &
fuzzSuite()
{
    // Seeded generator blocks: same categories as the evaluation suite,
    // small enough to sweep 9 arches x ablations x notions.
    static const auto s = bhive::generateSuite(20230917, 5);
    return s;
}

TEST(Registry, FuzzedBitIdentityAcrossArchesAndAblations)
{
    const auto variants = ablationVariants();
    PredictScratch scratch;
    std::size_t checked = 0;

    for (uarch::UArch arch : uarch::allUArchs()) {
        for (const auto &b : fuzzSuite()) {
            for (bool loop : {false, true}) {
                const bb::BasicBlock blk =
                    bb::analyze(loop ? b.bytesL : b.bytesU, arch);
                for (const auto &variant : variants) {
                    const Prediction ref =
                        reference::predict(blk, loop, variant.config);

                    // Eager full payload must match the reference
                    // everywhere, bit for bit.
                    const Prediction full = model::predict(
                        blk, loop, variant.config, scratch, Payload::Full);
                    ASSERT_TRUE(samePrediction(full, ref))
                        << uarch::config(arch).abbrev << " "
                        << variant.name << (loop ? " TPL" : " TPU");

                    // The cheap path must agree on throughput,
                    // componentValue, and the bottleneck classification
                    // (payload deliberately empty)...
                    Prediction bound = model::predict(
                        blk, loop, variant.config, scratch, Payload::None);
                    ASSERT_EQ(0, std::memcmp(&bound.throughput,
                                             &ref.throughput,
                                             sizeof(double)));
                    ASSERT_EQ(0,
                              std::memcmp(bound.componentValue.data(),
                                          ref.componentValue.data(),
                                          sizeof(double) *
                                              ref.componentValue.size()));
                    ASSERT_EQ(bound.bottlenecks, ref.bottlenecks);
                    ASSERT_EQ(bound.primaryBottleneck,
                              ref.primaryBottleneck);
                    ASSERT_TRUE(bound.criticalChain.empty());
                    ASSERT_TRUE(bound.contendingInsts.empty());
                    ASSERT_EQ(bound.contendedPorts, 0);

                    // ...and explain() must upgrade it to the exact
                    // eager payload.
                    model::explain(blk, variant.config, scratch, bound);
                    ASSERT_TRUE(samePrediction(bound, ref))
                        << "explain() diverged: "
                        << uarch::config(arch).abbrev << " "
                        << variant.name << (loop ? " TPL" : " TPU");
                    ++checked;
                }
            }
        }
    }
    // Guard against silently empty sweeps.
    EXPECT_GT(checked, 1000u);
}

TEST(Registry, ScratchlessEntryPointsMatchReference)
{
    // The classic paper-facing API (thread-local scratch, full payload).
    for (uarch::UArch arch : {uarch::UArch::SKL, uarch::UArch::HSW}) {
        for (const auto &b : fuzzSuite()) {
            const bb::BasicBlock blkU = bb::analyze(b.bytesU, arch);
            const bb::BasicBlock blkL = bb::analyze(b.bytesL, arch);
            EXPECT_TRUE(samePrediction(model::predictUnrolled(blkU),
                                       reference::predictUnrolled(blkU, {})));
            EXPECT_TRUE(samePrediction(model::predictLoop(blkL),
                                       reference::predictLoop(blkL, {})));
        }
    }
}

// ---- registry structure ----------------------------------------------------

TEST(Registry, PerArchComponentSetsFollowTheMicroArchConfig)
{
    for (uarch::UArch arch : uarch::allUArchs()) {
        const uarch::MicroArchConfig &cfg = uarch::config(arch);
        const Registry &reg = Registry::forArch(arch);
        EXPECT_EQ(reg.arch(), arch);

        bool hasLsd = false;
        int prev = -1;
        for (const ComponentPredictor *c : reg.components()) {
            const int id = static_cast<int>(c->id());
            EXPECT_GT(id, prev) << "components not in enum order";
            prev = id;
            if (c->id() == Component::LSD)
                hasLsd = true;
        }
        // The LSD component is registered exactly where the hardware
        // has it (SKL150 disables it on SKL/CLX).
        EXPECT_EQ(hasLsd, cfg.lsdEnabled) << cfg.abbrev;
        EXPECT_EQ(reg.components().size(),
                  static_cast<std::size_t>(cfg.lsdEnabled ? 7 : 6));

        // The JCC leg exists exactly on the erratum arches.
        EXPECT_EQ(reg.view({}).jccPossible, cfg.jccErratum) << cfg.abbrev;
    }
}

TEST(Registry, ViewResolvesAblationsWithoutFlagBranches)
{
    const Registry &reg = Registry::forArch(uarch::UArch::SKL);

    const RegistryView &full = reg.view({});
    EXPECT_EQ(full.nFront, 2);
    EXPECT_EQ(full.front[0]->id(), Component::Predec);
    EXPECT_EQ(full.front[1]->id(), Component::Dec);
    EXPECT_EQ(full.lsd, nullptr); // SKL150
    ASSERT_NE(full.dsb, nullptr);
    ASSERT_NE(full.issue, nullptr);
    ASSERT_NE(full.ports, nullptr);
    ASSERT_NE(full.precedence, nullptr);

    const RegistryView &onlyPorts =
        reg.view(ModelConfig::only(Component::Ports));
    EXPECT_EQ(onlyPorts.nFront, 0);
    EXPECT_EQ(onlyPorts.dsb, nullptr);
    EXPECT_EQ(onlyPorts.issue, nullptr);
    EXPECT_NE(onlyPorts.ports, nullptr);
    EXPECT_EQ(onlyPorts.precedence, nullptr);

    ModelConfig simple;
    simple.simplePredec = true;
    simple.simpleDec = true;
    const RegistryView &simpleView = reg.view(simple);
    ASSERT_EQ(simpleView.nFront, 2);
    EXPECT_EQ(simpleView.front[0]->displayName(), "SimplePredec");
    EXPECT_EQ(simpleView.front[1]->displayName(), "SimpleDec");
    EXPECT_EQ(simpleView.front[0]->id(), Component::Predec);
    EXPECT_EQ(simpleView.front[1]->id(), Component::Dec);

    // HSW has the LSD; its full view wires it.
    EXPECT_NE(Registry::forArch(uarch::UArch::HSW).view({}).lsd, nullptr);
}

TEST(Registry, CheapUpperBoundsDominateExactBounds)
{
    PredictScratch scratch;
    for (uarch::UArch arch : {uarch::UArch::SKL, uarch::UArch::SNB}) {
        const Registry &reg = Registry::forArch(arch);
        for (const auto &b : fuzzSuite()) {
            for (bool loop : {false, true}) {
                const bb::BasicBlock blk =
                    bb::analyze(loop ? b.bytesL : b.bytesU, arch);
                const PredictContext ctx{blk, uarch::config(arch), loop,
                                         Payload::None, scratch};
                for (const ComponentPredictor *c : reg.components()) {
                    const auto notions = c->notions();
                    if (!(loop ? notions.loop : notions.unrolled))
                        continue;
                    const double exact = c->bound(ctx);
                    const double cheap = c->cheapUpperBound(ctx);
                    EXPECT_GE(cheap, exact - 1e-9)
                        << c->displayName() << " on "
                        << uarch::config(arch).abbrev;
                }
            }
        }
    }
}

TEST(Registry, AblationVariantListMatchesTable3)
{
    const auto v = ablationVariants();
    // 1 full + 2 Simple* + 7 only + 2 combos + 7 without = 19 rows.
    ASSERT_EQ(v.size(), 19u);
    EXPECT_EQ(v[0].name, "Facile");
    EXPECT_EQ(v[1].name, "Facile w/ SimplePredec");
    EXPECT_FALSE(v[1].runL);
    EXPECT_EQ(v[2].name, "Facile w/ SimpleDec");
    EXPECT_EQ(v[3].name, "only Predec");
    EXPECT_TRUE(v[3].runU);
    EXPECT_FALSE(v[3].runL);
    EXPECT_EQ(v[5].name, "only DSB");
    EXPECT_FALSE(v[5].runU);
    EXPECT_TRUE(v[5].runL);
    EXPECT_EQ(v[10].name, "only Predec+Ports");
    EXPECT_EQ(v[11].name, "only Precedence+Ports");
    EXPECT_EQ(v[12].name, "Facile w/o Predec");
    EXPECT_EQ(v[18].name, "Facile w/o Precedence");
}

// ---- staged evaluation & counters -----------------------------------------

TEST(Registry, PrecedenceShortCircuitCountsSelfCarriedBlocks)
{
    // add rax,1 / add rbx,1: the only loop-carried dependences are the
    // instructions' own accumulators — the short-circuit must fire.
    using namespace facile::isa;
    const bb::BasicBlock selfCarried = bb::analyze(
        std::vector<Inst>{make(Mnemonic::ADD, {R(RAX), I(1, 1)}),
                          make(Mnemonic::ADD, {R(RBX), I(1, 1)})},
        uarch::UArch::SKL);
    // imul rax,rbx / imul rbx,rax: a cross-instruction carried cycle —
    // the full engine must run.
    const bb::BasicBlock crossCarried = bb::analyze(
        std::vector<Inst>{make(Mnemonic::IMUL, {R(RAX), R(RBX)}),
                          make(Mnemonic::IMUL, {R(RBX), R(RAX)})},
        uarch::UArch::SKL);

    PredictScratch scratch;
    bool sc = false;
    const double selfBound =
        precedenceBound(selfCarried, scratch.precedence, &sc);
    EXPECT_TRUE(sc);
    EXPECT_DOUBLE_EQ(selfBound,
                     precedence(selfCarried).throughput);

    const double crossBound =
        precedenceBound(crossCarried, scratch.precedence, &sc);
    EXPECT_FALSE(sc);
    EXPECT_DOUBLE_EQ(crossBound, precedence(crossCarried).throughput);

    const PredictCountersSnapshot before = predictCounters();
    (void)model::predict(selfCarried, false, {}, scratch);
    const PredictCountersSnapshot mid = predictCounters();
    EXPECT_EQ(mid.precedenceEvals - before.precedenceEvals, 1u);
    EXPECT_EQ(mid.precedenceShortCircuits - before.precedenceShortCircuits,
              1u);
    (void)model::predict(crossCarried, false, {}, scratch);
    const PredictCountersSnapshot after = predictCounters();
    EXPECT_EQ(after.precedenceEvals - mid.precedenceEvals, 1u);
    EXPECT_EQ(after.precedenceShortCircuits - mid.precedenceShortCircuits,
              0u);
}

TEST(Registry, PrecedenceBoundMatchesFullEngineOnFuzzedBlocks)
{
    // The short-circuit contract over the whole fuzz suite, on every
    // arch: bound-only and full precedence agree to the bit.
    PredictScratch scratch;
    std::size_t shortCircuited = 0, total = 0;
    for (uarch::UArch arch : uarch::allUArchs()) {
        for (const auto &b : fuzzSuite()) {
            for (bool loop : {false, true}) {
                const bb::BasicBlock blk =
                    bb::analyze(loop ? b.bytesL : b.bytesU, arch);
                bool sc = false;
                const double bound =
                    precedenceBound(blk, scratch.precedence, &sc);
                const PrecedenceResult fullRes =
                    precedence(blk, scratch.precedence);
                ASSERT_EQ(0, std::memcmp(&bound, &fullRes.throughput,
                                         sizeof(double)))
                    << uarch::config(arch).abbrev
                    << (loop ? " TPL" : " TPU") << " bound " << bound
                    << " vs " << fullRes.throughput;
                shortCircuited += sc ? 1 : 0;
                ++total;
            }
        }
    }
    // The regime the optimization targets must actually occur.
    EXPECT_GT(shortCircuited, 0u);
    EXPECT_LT(shortCircuited, total);
}

TEST(Registry, CountersSeparateBoundAndFullPredicts)
{
    const bb::BasicBlock blk = bb::analyze(
        fuzzSuite().front().bytesU, uarch::UArch::SKL);
    PredictScratch scratch;

    const PredictCountersSnapshot c0 = predictCounters();
    (void)model::predict(blk, false, {}, scratch, Payload::None);
    (void)model::predict(blk, false, {}, scratch, Payload::Full);
    Prediction p = model::predict(blk, false, {}, scratch, Payload::None);
    model::explain(blk, {}, scratch, p);
    const PredictCountersSnapshot c1 = predictCounters();

    EXPECT_EQ(c1.boundPredicts - c0.boundPredicts, 2u);
    EXPECT_EQ(c1.fullPredicts - c0.fullPredicts, 1u);
    EXPECT_EQ(c1.explainCalls - c0.explainCalls, 1u);
}

} // namespace
} // namespace facile::model
