/**
 * @file
 * Property tests: decode(encode(inst)) == inst over a systematically
 * enumerated and randomized slice of the supported instruction space,
 * and byte-level idempotence encode(decode(bytes)) == bytes.
 */
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/decoder.h"
#include "isa/encoder.h"
#include "support/rng.h"

namespace facile::isa {
namespace {

void
expectRoundTrip(const Inst &inst)
{
    std::vector<std::uint8_t> bytes;
    ASSERT_NO_THROW(bytes = encode(inst)) << toString(inst);
    DecodedInst d;
    ASSERT_NO_THROW(d = decodeOne(bytes.data(), bytes.size()))
        << toString(inst);
    EXPECT_EQ(d.inst.mnem, inst.mnem) << toString(inst);
    EXPECT_EQ(d.inst.cc, inst.cc) << toString(inst);
    ASSERT_EQ(d.inst.ops.size(), inst.ops.size()) << toString(inst);
    for (std::size_t i = 0; i < inst.ops.size(); ++i)
        EXPECT_EQ(d.inst.ops[i], inst.ops[i])
            << toString(inst) << " operand " << i;
    EXPECT_EQ(static_cast<std::size_t>(d.length), bytes.size());

    // Byte-level idempotence: re-encoding the decoded instruction must
    // reproduce the canonical encoding exactly.
    EXPECT_EQ(encode(d.inst), bytes) << toString(inst);
}

TEST(RoundTrip, AluAllWidthsAllRegs)
{
    for (Mnemonic m : {Mnemonic::ADD, Mnemonic::SUB, Mnemonic::AND,
                       Mnemonic::OR, Mnemonic::XOR, Mnemonic::CMP,
                       Mnemonic::ADC, Mnemonic::SBB}) {
        for (int w : {1, 2, 4, 8}) {
            for (int r1 : {0, 3, 5, 8, 12, 15}) {
                for (int r2 : {1, 4, 7, 9, 13}) {
                    expectRoundTrip(
                        make(m, {R(gpr(w, r1)), R(gpr(w, r2))}));
                }
            }
        }
    }
}

TEST(RoundTrip, AluImmediateWidths)
{
    for (Mnemonic m : {Mnemonic::ADD, Mnemonic::CMP, Mnemonic::XOR}) {
        expectRoundTrip(make(m, {R(RAX), I(5, 1)}));
        expectRoundTrip(make(m, {R(RAX), I(-7, 1)}));
        expectRoundTrip(make(m, {R(RAX), I(0x7fff, 4)}));
        expectRoundTrip(make(m, {R(AX), I(0x1234, 2)}));   // LCP form
        expectRoundTrip(make(m, {R(EAX), I(0x123456, 4)}));
        expectRoundTrip(make(m, {R(AL), I(17, 1)}));
    }
}

TEST(RoundTrip, MemoryAddressingModes)
{
    const std::vector<Reg> bases = {RAX, RBX, RSP, RBP, R12, R13, R14};
    for (Reg base : bases) {
        for (std::int32_t disp : {0, 1, -1, 127, -128, 128, 0x1000}) {
            expectRoundTrip(
                make(Mnemonic::MOV, {R(RCX), M(mem(base, disp))}));
        }
    }
    for (Reg index : {RAX, RCX, RBP, R9, R13}) {
        for (int scale : {1, 2, 4, 8}) {
            expectRoundTrip(make(
                Mnemonic::MOV,
                {R(RDX), M(memIdx(RBX, index, scale, 16))}));
        }
    }
}

TEST(RoundTrip, MovAllForms)
{
    expectRoundTrip(make(Mnemonic::MOV, {R(RAX), R(RBX)}));
    expectRoundTrip(make(Mnemonic::MOV, {R(EAX), I(0x12345678, 4)}));
    expectRoundTrip(make(Mnemonic::MOV, {R(CX), I(0x1234, 2)}));
    expectRoundTrip(make(Mnemonic::MOV, {R(AL), I(7, 1)}));
    expectRoundTrip(make(Mnemonic::MOV, {R(RAX), I(-1, 4)}));
    expectRoundTrip(make(Mnemonic::MOV, {M(mem(RBX, 4, 4)), R(ECX)}));
    expectRoundTrip(make(Mnemonic::MOV, {M(mem(RBX, 4, 4)), I(99, 4)}));
    expectRoundTrip(make(Mnemonic::MOV, {R(RAX), M(mem(R13, -8))}));
}

TEST(RoundTrip, UnaryAndShifts)
{
    for (Mnemonic m : {Mnemonic::INC, Mnemonic::DEC, Mnemonic::NEG,
                       Mnemonic::NOT}) {
        expectRoundTrip(make(m, {R(RAX)}));
        expectRoundTrip(make(m, {R(R11)}));
        expectRoundTrip(make(m, {M(mem(RBX, 0, 8))}));
    }
    for (Mnemonic m : {Mnemonic::SHL, Mnemonic::SHR, Mnemonic::SAR,
                       Mnemonic::ROL, Mnemonic::ROR}) {
        expectRoundTrip(make(m, {R(RAX), I(7, 1)}));
        expectRoundTrip(make(m, {R(R9), R(CL)}));
    }
}

TEST(RoundTrip, MulDivImul)
{
    expectRoundTrip(make(Mnemonic::IMUL, {R(RAX), R(RBX)}));
    expectRoundTrip(make(Mnemonic::IMUL, {R(RAX), R(RBX), I(7, 1)}));
    expectRoundTrip(make(Mnemonic::IMUL, {R(RAX), R(RBX), I(1000, 4)}));
    expectRoundTrip(make(Mnemonic::IMUL, {R(RCX)}));
    expectRoundTrip(make(Mnemonic::MUL, {R(RCX)}));
    expectRoundTrip(make(Mnemonic::DIV, {R(ECX)}));
    expectRoundTrip(make(Mnemonic::IDIV, {R(R8)}));
}

TEST(RoundTrip, BitManipAndMoves)
{
    expectRoundTrip(make(Mnemonic::MOVZX, {R(RAX), R(BL)}));
    expectRoundTrip(make(Mnemonic::MOVZX, {R(EAX), R(CX)}));
    expectRoundTrip(make(Mnemonic::MOVSX, {R(RAX), R(gpr(1, 9))}));
    expectRoundTrip(make(Mnemonic::MOVZX, {R(R10), M(mem(RBX, 2, 1))}));
    expectRoundTrip(make(Mnemonic::BSWAP, {R(RAX)}));
    expectRoundTrip(make(Mnemonic::BSWAP, {R(R15)}));
    expectRoundTrip(make(Mnemonic::POPCNT, {R(RAX), R(RBX)}));
    expectRoundTrip(make(Mnemonic::LZCNT, {R(RAX), R(RBX)}));
    expectRoundTrip(make(Mnemonic::TZCNT, {R(R12), R(R13)}));
    expectRoundTrip(make(Mnemonic::BSF, {R(RAX), R(RBX)}));
    expectRoundTrip(make(Mnemonic::BSR, {R(EAX), R(EBX)}));
    expectRoundTrip(make(Mnemonic::XCHG, {R(RAX), R(RBX)}));
}

TEST(RoundTrip, StackAndControl)
{
    expectRoundTrip(make(Mnemonic::PUSH, {R(RBP)}));
    expectRoundTrip(make(Mnemonic::PUSH, {R(R15)}));
    expectRoundTrip(make(Mnemonic::POP, {R(RBP)}));
    expectRoundTrip(make(Mnemonic::PUSH, {I(1000, 4)}));
    expectRoundTrip(make(Mnemonic::RET, {}));
    expectRoundTrip(make(Mnemonic::CALL, {I(0x100, 4)}));
    expectRoundTrip(make(Mnemonic::JMP, {I(-20, 1)}));
    expectRoundTrip(make(Mnemonic::JMP, {I(1000, 4)}));
    for (int cc = 0; cc < 16; ++cc) {
        expectRoundTrip(
            makeCC(Mnemonic::JCC, static_cast<Cond>(cc), {I(-5, 1)}));
        expectRoundTrip(makeCC(Mnemonic::SETCC, static_cast<Cond>(cc),
                               {R(gpr(1, cc))}));
        expectRoundTrip(makeCC(Mnemonic::CMOVCC, static_cast<Cond>(cc),
                               {R(RAX), R(RCX)}));
    }
}

TEST(RoundTrip, SseForms)
{
    const std::vector<Mnemonic> twoOp = {
        Mnemonic::ADDPS, Mnemonic::ADDPD, Mnemonic::ADDSS, Mnemonic::ADDSD,
        Mnemonic::SUBPS, Mnemonic::SUBPD, Mnemonic::SUBSD, Mnemonic::MULPS,
        Mnemonic::MULPD, Mnemonic::MULSS, Mnemonic::MULSD, Mnemonic::DIVPS,
        Mnemonic::DIVPD, Mnemonic::DIVSS, Mnemonic::DIVSD, Mnemonic::SQRTPS,
        Mnemonic::SQRTPD, Mnemonic::SQRTSD, Mnemonic::MINPS, Mnemonic::MAXPS,
        Mnemonic::ANDPS, Mnemonic::ORPS, Mnemonic::XORPS, Mnemonic::PXOR,
        Mnemonic::PADDD, Mnemonic::PADDQ, Mnemonic::PSUBD, Mnemonic::PAND,
        Mnemonic::POR, Mnemonic::PMULLD, Mnemonic::PUNPCKLDQ};
    for (Mnemonic m : twoOp) {
        expectRoundTrip(make(m, {R(XMM0), R(XMM3)}));
        expectRoundTrip(make(m, {R(xmm(9)), R(xmm(14))}));
    }
    expectRoundTrip(make(Mnemonic::MOVAPS, {R(XMM1), M(mem(RBX, 0, 16))}));
    expectRoundTrip(make(Mnemonic::MOVAPS, {M(mem(RBX, 16, 16)), R(XMM1)}));
    expectRoundTrip(make(Mnemonic::MOVSD, {R(XMM1), M(mem(RSI, 8, 8))}));
    expectRoundTrip(make(Mnemonic::MOVSD, {M(mem(RSI, 8, 8)), R(XMM1)}));
    expectRoundTrip(make(Mnemonic::MOVSS, {R(XMM1), R(XMM2)}));
    expectRoundTrip(make(Mnemonic::SHUFPS, {R(XMM0), R(XMM1), I(0x1B, 1)}));
    expectRoundTrip(make(Mnemonic::PSLLD, {R(XMM3), I(5, 1)}));
    expectRoundTrip(make(Mnemonic::PSRLD, {R(XMM3), I(9, 1)}));
    expectRoundTrip(make(Mnemonic::CVTSI2SD, {R(XMM0), R(RAX)}));
    expectRoundTrip(make(Mnemonic::CVTSI2SD, {R(XMM0), R(EAX)}));
    expectRoundTrip(make(Mnemonic::CVTTSD2SI, {R(RAX), R(XMM0)}));
    expectRoundTrip(make(Mnemonic::MOVD, {R(XMM0), R(EAX)}));
    expectRoundTrip(make(Mnemonic::MOVD, {R(EAX), R(XMM0)}));
    expectRoundTrip(make(Mnemonic::MOVQ, {R(XMM0), R(RAX)}));
    expectRoundTrip(make(Mnemonic::MOVQ, {R(RAX), R(XMM0)}));
}

TEST(RoundTrip, AvxForms)
{
    const std::vector<Mnemonic> threeOp = {
        Mnemonic::VADDPS, Mnemonic::VADDPD, Mnemonic::VADDSD,
        Mnemonic::VSUBPS, Mnemonic::VMULPS, Mnemonic::VMULPD,
        Mnemonic::VMULSD, Mnemonic::VDIVPS, Mnemonic::VDIVSD,
        Mnemonic::VANDPS, Mnemonic::VXORPS, Mnemonic::VPXOR,
        Mnemonic::VPADDD, Mnemonic::VPMULLD, Mnemonic::VFMADD231PS,
        Mnemonic::VFMADD231PD, Mnemonic::VFMADD231SD};
    for (Mnemonic m : threeOp) {
        expectRoundTrip(make(m, {R(XMM0), R(XMM1), R(XMM2)}));
        expectRoundTrip(make(m, {R(xmm(8)), R(xmm(15)), R(xmm(3))}));
        expectRoundTrip(make(m, {R(XMM0), R(XMM1), M(mem(RBX, 0, 16))}));
    }
    expectRoundTrip(make(Mnemonic::VADDPS, {R(YMM0), R(YMM1), R(YMM2)}));
    expectRoundTrip(make(Mnemonic::VMOVAPS, {R(YMM0), M(mem(RBX, 0, 32))}));
    expectRoundTrip(make(Mnemonic::VMOVAPS, {M(mem(RBX, 0, 32)), R(YMM1)}));
    expectRoundTrip(make(Mnemonic::VMOVUPS, {R(XMM5), R(xmm(9))}));
    expectRoundTrip(make(Mnemonic::VSQRTPD, {R(XMM2), R(xmm(7))}));
}

TEST(RoundTrip, RandomizedBlocks)
{
    // Fuzz: random instructions from the whole builder space, encoded as
    // blocks and decoded back.
    Rng rng(20231020);
    const std::vector<Reg> regs = {RAX, RBX, RCX, RDX, RSI, RDI,
                                   R8,  R9,  R12, R13, R15};
    for (int trial = 0; trial < 500; ++trial) {
        Inst inst;
        switch (rng.below(8)) {
          case 0:
            inst = make(Mnemonic::ADD,
                        {R(rng.pick(regs)), R(rng.pick(regs))});
            break;
          case 1:
            inst = make(Mnemonic::MOV,
                        {R(rng.pick(regs)),
                         M(memIdx(rng.pick(regs), RCX, 1 << rng.below(4),
                                  static_cast<std::int32_t>(
                                      rng.range(-200, 200))))});
            break;
          case 2:
            inst = make(Mnemonic::IMUL, {R(rng.pick(regs)),
                                         R(rng.pick(regs)),
                                         I(rng.range(-100, 100), 1)});
            break;
          case 3:
            inst = make(Mnemonic::CMP, {R(gpr(2, rng.pick(regs).idx)),
                                        I(rng.range(256, 30000), 2)});
            break;
          case 4:
            inst = nop(1 + static_cast<int>(rng.below(15)));
            break;
          case 5:
            inst = make(Mnemonic::VFMADD231PD,
                        {R(xmm(rng.below(16))), R(xmm(rng.below(16))),
                         R(xmm(rng.below(16)))});
            break;
          case 6:
            inst = make(Mnemonic::SHL, {R(rng.pick(regs)),
                                        I(rng.range(1, 63), 1)});
            break;
          default:
            inst = makeCC(Mnemonic::CMOVCC,
                          static_cast<Cond>(rng.below(16)),
                          {R(rng.pick(regs)), R(rng.pick(regs))});
            break;
        }
        expectRoundTrip(inst);
    }
}

} // namespace
} // namespace facile::isa
