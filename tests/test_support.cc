/**
 * @file
 * Unit tests for the support library: math helpers, accuracy metrics,
 * and the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "support/math_util.h"
#include "support/rng.h"
#include "support/stats.h"

namespace facile {
namespace {

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(5, 5), 1);
    EXPECT_EQ(ceilDiv(6, 5), 2);
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
}

TEST(MathUtil, Lcm)
{
    EXPECT_EQ(lcm(12, 16), 48);
    EXPECT_EQ(lcm(16, 16), 16);
    EXPECT_EQ(lcm(1, 16), 16);
    EXPECT_EQ(lcm(7, 16), 112);
}

TEST(MathUtil, Round2)
{
    EXPECT_DOUBLE_EQ(round2(1.004), 1.0);
    EXPECT_DOUBLE_EQ(round2(1.006), 1.01);
    EXPECT_DOUBLE_EQ(round2(26.0), 26.0);
    EXPECT_DOUBLE_EQ(round2(0.333333), 0.33);
}

TEST(Stats, MapeBasics)
{
    EXPECT_DOUBLE_EQ(mape({1, 2, 4}, {1, 2, 4}), 0.0);
    EXPECT_NEAR(mape({2.0}, {1.0}), 0.5, 1e-12);
    EXPECT_NEAR(mape({2.0, 4.0}, {1.0, 4.0}), 0.25, 1e-12);
}

TEST(Stats, MapeSkipsZeroMeasured)
{
    EXPECT_NEAR(mape({0.0, 2.0}, {5.0, 1.0}), 0.5, 1e-12);
}

TEST(Stats, MapeReportsSkippedCount)
{
    std::size_t skipped = 99;
    EXPECT_NEAR(mape({0.0, 2.0, 4.0}, {5.0, 1.0, 4.0}, &skipped), 0.25,
                1e-12);
    EXPECT_EQ(skipped, 1u);

    EXPECT_DOUBLE_EQ(mape({1.0, 2.0}, {1.0, 2.0}, &skipped), 0.0);
    EXPECT_EQ(skipped, 0u);
}

TEST(Stats, MapeAllZeroMeasuredIsNaN)
{
    // An all-zero measured vector evaluates nothing; returning 0 here
    // would report a perfect score for an unevaluated metric.
    std::size_t skipped = 0;
    EXPECT_TRUE(std::isnan(mape({0.0, 0.0}, {1.0, 2.0}, &skipped)));
    EXPECT_EQ(skipped, 2u);
}

TEST(Stats, MapeEmptyIsNaN)
{
    std::size_t skipped = 99;
    EXPECT_TRUE(std::isnan(mape({}, {}, &skipped)));
    EXPECT_EQ(skipped, 0u);
}

TEST(Stats, MapeSizeMismatchThrows)
{
    EXPECT_THROW(mape({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, KendallSizeMismatchThrows)
{
    EXPECT_THROW(kendallTau({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, KendallPerfectCorrelation)
{
    EXPECT_NEAR(kendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(Stats, KendallPerfectAntiCorrelation)
{
    EXPECT_NEAR(kendallTau({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0, 1e-12);
}

TEST(Stats, KendallKnownValue)
{
    // x = (1,2,3,4,5), y = (3,1,4,2,5): 7 concordant, 3 discordant
    // pairs out of 10 -> tau = (7-3)/10 = 0.4.
    EXPECT_NEAR(kendallTau({1, 2, 3, 4, 5}, {3, 1, 4, 2, 5}), 0.4, 1e-12);
}

TEST(Stats, KendallWithTies)
{
    // x = (1,1,2,3), y = (1,2,2,3): C=4, D=0, one x-tie, one y-tie:
    // tau-b = 4 / sqrt(5*5) = 0.8.
    EXPECT_NEAR(kendallTau({1, 1, 2, 3}, {1, 2, 2, 3}), 0.8, 1e-9);
}

TEST(Stats, KendallAllTied)
{
    EXPECT_DOUBLE_EQ(kendallTau({1, 1, 1}, {2, 2, 2}), 0.0);
}

TEST(Stats, KendallLargePermutationMatchesBruteForce)
{
    Rng rng(7);
    std::vector<double> x(200), y(200);
    for (int i = 0; i < 200; ++i) {
        x[i] = rng.below(50);
        y[i] = rng.below(50);
    }
    // O(n^2) reference for tau-b.
    std::int64_t concordant = 0, discordant = 0, tx = 0, ty = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        for (std::size_t j = i + 1; j < x.size(); ++j) {
            double dx = x[i] - x[j], dy = y[i] - y[j];
            if (dx == 0 && dy == 0)
                continue;
            else if (dx == 0)
                ++tx;
            else if (dy == 0)
                ++ty;
            else if (dx * dy > 0)
                ++concordant;
            else
                ++discordant;
        }
    }
    double num = static_cast<double>(concordant - discordant);
    double den = std::sqrt(static_cast<double>(concordant + discordant + tx)) *
                 std::sqrt(static_cast<double>(concordant + discordant + ty));
    EXPECT_NEAR(kendallTau(x, y), num / den, 1e-9);
}

TEST(Stats, MeanAndGeoMean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geoMean({1, 4}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2, 2, 2}), 2.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<double> v = {4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 16);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RangeSmallSpanKeepsHistoricalSequence)
{
    // Spans that fit in 32 bits must keep drawing exactly one below()
    // sample, or every deterministic BHive suite silently changes.
    Rng a(20231020), b(20231020);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(a.range(-16, 64),
                  -16 + static_cast<std::int64_t>(b.below(81)));
}

TEST(Rng, RangeDegenerate)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.range(5, 5), 5);
    EXPECT_EQ(rng.range(-7, -7), -7);
}

TEST(Rng, RangeWiderThan32BitsCoversFullSpan)
{
    // The pre-fix code truncated hi - lo + 1 to uint32: for a span of
    // 2^40 + 1 that truncates to 1, so every sample came out as lo.
    Rng rng(17);
    const std::int64_t hi = std::int64_t{1} << 40;
    bool sawAbove32Bits = false, sawNonZero = false;
    for (int i = 0; i < 200; ++i) {
        std::int64_t v = rng.range(0, hi);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, hi);
        sawNonZero |= v != 0;
        sawAbove32Bits |= v > std::int64_t{0xffffffff};
    }
    EXPECT_TRUE(sawNonZero);
    EXPECT_TRUE(sawAbove32Bits);
}

TEST(Rng, RangeFullInt64SpanDoesNotCollapse)
{
    // hi - lo + 1 overflows int64 here; the unsigned span wraps to 0.
    // Pre-fix this collapsed to below(0) == 0, i.e. always INT64_MIN.
    Rng rng(23);
    const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    bool sawNegative = false, sawPositive = false;
    for (int i = 0; i < 200; ++i) {
        std::int64_t v = rng.range(lo, hi);
        sawNegative |= v < 0;
        sawPositive |= v > 0;
    }
    EXPECT_TRUE(sawNegative);
    EXPECT_TRUE(sawPositive);
}

TEST(Rng, Below64RespectsBound)
{
    Rng rng(29);
    const std::uint64_t bound = (std::uint64_t{1} << 40) + 3;
    for (int i = 0; i < 500; ++i)
        EXPECT_LT(rng.below64(bound), bound);
    EXPECT_EQ(rng.below64(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

} // namespace
} // namespace facile
