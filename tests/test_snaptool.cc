/**
 * @file
 * End-to-end tests for facile_snaptool (src/tools/facile_snaptool.cc),
 * driving the real binary (FACILE_SNAPTOOL_PATH, injected by CMake)
 * through popen. The contracts: verify is exit-code-truthful on both
 * formats and every corruption class; convert round trips are
 * bit-identical; merge is a commutative union that rejects content
 * conflicts; compact/convert honour --dry-run by writing nothing.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/intern.h"
#include "analysis/snapshot.h"
#include "bb/basic_block.h"
#include "bhive/generator.h"
#include "engine/engine.h"
#include "uarch/config.h"

namespace facile {
namespace {

struct RunResult {
    int status = -1;
    std::string out;
};

/** Run the snaptool with @p args, capturing exit status and output. */
RunResult
snaptool(const std::string &args)
{
    RunResult r;
    const std::string cmd =
        std::string(FACILE_SNAPTOOL_PATH) + " " + args + " 2>&1";
    std::FILE *p = ::popen(cmd.c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    const int rc = ::pclose(p);
    r.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return r;
}

std::string
tmpPath(const char *tag)
{
    return "test_snaptool_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".bin";
}

std::vector<std::uint8_t>
slurpFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return {};
    std::fseek(f, 0, SEEK_END);
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(buf.data(), 1, buf.size(), f), buf.size());
    std::fclose(f);
    return buf;
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}

bool
fileExists(const std::string &p)
{
    std::FILE *f = std::fopen(p.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

/** Analyze a small suite so the interners have exportable content. */
void
populateInterners()
{
    static const bool done = [] {
        const std::vector<bhive::Benchmark> suite =
            bhive::generateSuite(0x700157001ULL, 4);
        for (uarch::UArch arch : uarch::allUArchs())
            for (const auto &b : suite) {
                bb::analyze(b.bytesU, arch);
                bb::analyze(b.bytesL, arch);
            }
        return true;
    }();
    (void)done;
}

/** Path of a saved snapshot in @p fmt (cached per format). */
std::string
savedSnapshot(analysis::SnapshotFormat fmt)
{
    populateInterners();
    const bool v2 = fmt == analysis::SnapshotFormat::V2;
    static std::string pathV1, pathV2;
    std::string &path = v2 ? pathV2 : pathV1;
    if (path.empty()) {
        path = tmpPath(v2 ? "fixture_v2" : "fixture_v1");
        analysis::saveSnapshot(path, {.format = fmt});
    }
    return path;
}

TEST(Snaptool, UsageErrorsExitTwo)
{
    EXPECT_EQ(snaptool("").status, 2);
    EXPECT_EQ(snaptool("frobnicate x").status, 2);
    EXPECT_EQ(snaptool("convert missing-operand").status, 2);
    EXPECT_EQ(snaptool("help").status, 0);
}

TEST(Snaptool, VerifyBothFormatsAndCorruption)
{
    const std::string v1 = savedSnapshot(analysis::SnapshotFormat::V1);
    const std::string v2 = savedSnapshot(analysis::SnapshotFormat::V2);

    RunResult both = snaptool("verify " + v1 + " " + v2);
    EXPECT_EQ(both.status, 0) << both.out;
    EXPECT_NE(both.out.find("OK   " + v1), std::string::npos) << both.out;
    EXPECT_NE(both.out.find("OK   " + v2), std::string::npos) << both.out;
    EXPECT_NE(both.out.find("v1"), std::string::npos);
    EXPECT_NE(both.out.find("v2"), std::string::npos);

    // Every corruption class must flip the exit code: truncation,
    // header damage, table damage, payload bit flip — both formats.
    for (const std::string &src : {v1, v2}) {
        const std::vector<std::uint8_t> img = slurpFile(src);
        const std::string bad = tmpPath("verify_bad");
        struct Case {
            const char *what;
            std::size_t cut;   // SIZE_MAX = no truncation
            std::size_t flip;  // byte to xor when not truncating
        };
        const Case cases[] = {
            {"empty", 0, 0},
            {"header cut", 16, 0},
            {"tail cut", img.size() - 1, 0},
            {"magic flip", SIZE_MAX, 0},
            {"header flip", SIZE_MAX, 9},
            {"payload flip", SIZE_MAX, img.size() / 2},
            {"tail flip", SIZE_MAX, img.size() - 1},
        };
        for (const Case &c : cases) {
            std::vector<std::uint8_t> mut = img;
            if (c.cut != SIZE_MAX)
                mut.resize(c.cut);
            else
                mut[c.flip] ^= 0x40;
            writeFile(bad, mut);
            const RunResult r = snaptool("verify " + bad);
            EXPECT_EQ(r.status, 1) << src << ": " << c.what << "\n"
                                   << r.out;
            EXPECT_NE(r.out.find("FAIL"), std::string::npos) << c.what;
        }
        std::remove(bad.c_str());
    }

    // A missing file is a FAIL, not a crash.
    EXPECT_EQ(snaptool("verify does-not-exist.bin").status, 1);
}

TEST(Snaptool, DumpShowsLayout)
{
    const std::string v2 = savedSnapshot(analysis::SnapshotFormat::V2);
    const RunResult r = snaptool("dump " + v2);
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("format:      v2"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("records"), std::string::npos);
    EXPECT_NE(r.out.find("sections:"), std::string::npos);
    // One records section per arch appears with its abbrev.
    EXPECT_NE(r.out.find("SKL"), std::string::npos) << r.out;

    const RunResult hex = snaptool("dump --hex " + v2);
    EXPECT_EQ(hex.status, 0);
    EXPECT_NE(hex.out.find("header hex:"), std::string::npos);

    const std::string v1 = savedSnapshot(analysis::SnapshotFormat::V1);
    const RunResult r1 = snaptool("dump " + v1);
    EXPECT_EQ(r1.status, 0) << r1.out;
    EXPECT_NE(r1.out.find("format:      v1"), std::string::npos);
}

TEST(Snaptool, ConvertRoundTripIsBitIdentical)
{
    const std::string v2 = savedSnapshot(analysis::SnapshotFormat::V2);
    const std::vector<std::uint8_t> orig = slurpFile(v2);
    const std::string asV1 = tmpPath("conv_v1");
    const std::string back = tmpPath("conv_back");

    // Same-format rebuild reproduces the input bit for bit.
    const std::string same = tmpPath("conv_same");
    EXPECT_EQ(snaptool("convert " + v2 + " --to v2 --out " + same).status,
              0);
    EXPECT_EQ(slurpFile(same), orig);

    // v2 -> v1 -> v2 lands back on the original bytes.
    EXPECT_EQ(snaptool("convert " + v2 + " --to v1 --out " + asV1).status,
              0);
    EXPECT_EQ(snaptool("verify " + asV1).status, 0);
    EXPECT_EQ(
        snaptool("convert " + asV1 + " --to v2 --out " + back).status, 0);
    EXPECT_EQ(slurpFile(back), orig);

    // And the logical contents never changed along the way.
    EXPECT_EQ(snaptool("diff " + v2 + " " + asV1).status, 0);

    std::remove(same.c_str());
    std::remove(asV1.c_str());
    std::remove(back.c_str());
}

TEST(Snaptool, DryRunWritesNothing)
{
    const std::string v2 = savedSnapshot(analysis::SnapshotFormat::V2);
    const std::string out = tmpPath("dryrun_out");
    std::remove(out.c_str());

    const RunResult r =
        snaptool("convert " + v2 + " --to v1 --out " + out + " --dry-run");
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("would write"), std::string::npos) << r.out;
    EXPECT_FALSE(fileExists(out));

    const std::vector<std::uint8_t> before = slurpFile(v2);
    EXPECT_EQ(snaptool("compact " + v2 + " --dry-run").status, 0);
    EXPECT_EQ(slurpFile(v2), before) << "in-place dry run mutated input";
}

/** Split the fixture into two overlapping-or-disjoint partial images. */
void
splitFixture(const std::string &outA, const std::string &outB,
             bool overlap)
{
    const std::string full = savedSnapshot(analysis::SnapshotFormat::V2);
    const std::vector<std::uint8_t> img = slurpFile(full);
    const analysis::SnapshotModel m =
        analysis::parseSnapshotModel(img.data(), img.size());
    ASSERT_GE(m.arches.size(), 4u);

    const std::size_t mid = m.arches.size() / 2;
    analysis::SnapshotModel a, b;
    a.sourceVersion = b.sourceVersion = 2;
    for (std::size_t i = 0; i < m.arches.size(); ++i) {
        // With overlap, a band around the midpoint lands in both.
        const bool inA = i < mid + (overlap ? 1 : 0);
        const bool inB = i >= mid - (overlap ? 1 : 0);
        if (inA)
            a.arches.push_back(m.arches[i]);
        if (inB)
            b.arches.push_back(m.arches[i]);
    }
    const std::vector<std::uint8_t> ia = analysis::buildSnapshotImage(
        a, analysis::SnapshotFormat::V2);
    const std::vector<std::uint8_t> ib = analysis::buildSnapshotImage(
        b, analysis::SnapshotFormat::V2);
    writeFile(outA, ia);
    writeFile(outB, ib);
}

TEST(Snaptool, MergeIsACommutativeUnion)
{
    for (const bool overlap : {false, true}) {
        const std::string a = tmpPath(overlap ? "merge_a_o" : "merge_a");
        const std::string b = tmpPath(overlap ? "merge_b_o" : "merge_b");
        splitFixture(a, b, overlap);

        const std::string ab = tmpPath("merge_ab");
        const std::string ba = tmpPath("merge_ba");
        ASSERT_EQ(snaptool("merge " + ab + " " + a + " " + b).status, 0)
            << "overlap=" << overlap;
        ASSERT_EQ(snaptool("merge " + ba + " " + b + " " + a).status, 0);

        // Union is order-independent down to the bytes.
        EXPECT_EQ(slurpFile(ab), slurpFile(ba)) << "overlap=" << overlap;
        EXPECT_EQ(snaptool("verify " + ab).status, 0);

        // And logically identical to the full fixture it was split
        // from (the split covered every arch).
        EXPECT_EQ(
            snaptool("diff " + ab + " " +
                     savedSnapshot(analysis::SnapshotFormat::V2))
                .status,
            0)
            << "overlap=" << overlap;

        for (const std::string &p : {a, b, ab, ba})
            std::remove(p.c_str());
    }
}

TEST(Snaptool, MergeRejectsContentConflicts)
{
    const std::string full = savedSnapshot(analysis::SnapshotFormat::V2);
    const std::vector<std::uint8_t> img = slurpFile(full);
    analysis::SnapshotModel m =
        analysis::parseSnapshotModel(img.data(), img.size());
    ASSERT_FALSE(m.arches.empty());
    ASSERT_FALSE(m.arches[0].records.empty());
    // Same key, different analysis: a content conflict.
    m.arches[0].records[0].second.info.latency += 1;
    const std::string forged = tmpPath("merge_forged");
    writeFile(forged, analysis::buildSnapshotImage(
                          m, analysis::SnapshotFormat::V2));

    const std::string out = tmpPath("merge_conflict_out");
    const RunResult r =
        snaptool("merge " + out + " " + full + " " + forged);
    EXPECT_EQ(r.status, 1) << r.out;
    EXPECT_NE(r.out.find("merge conflict"), std::string::npos) << r.out;
    EXPECT_FALSE(fileExists(out));
    std::remove(forged.c_str());
}

TEST(Snaptool, DiffReportsDirectionalDifferences)
{
    const std::string full = savedSnapshot(analysis::SnapshotFormat::V2);
    const std::string a = tmpPath("diff_a");
    const std::string b = tmpPath("diff_b");
    splitFixture(a, b, false);

    EXPECT_EQ(snaptool("diff " + full + " " + full).status, 0);
    const RunResult r = snaptool("diff " + full + " " + a);
    EXPECT_EQ(r.status, 1) << r.out;
    EXPECT_NE(r.out.find("only in A"), std::string::npos) << r.out;
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(Snaptool, CompactDropsPredictionsAndStaysLoadable)
{
    populateInterners();
    // A snapshot with a prediction cache aboard.
    const std::vector<bhive::Benchmark> suite =
        bhive::generateSuite(0x700157001ULL, 4);
    std::vector<engine::Request> batch;
    for (const auto &bm : suite)
        batch.push_back({bm.bytesL, uarch::UArch::SKL, true, {}});
    engine::PredictionEngine::Options eopts;
    eopts.numThreads = 2;
    engine::PredictionEngine eng(eopts);
    eng.predictBatch(batch);

    const std::string snap = tmpPath("compact_full");
    const analysis::SnapshotStats saved =
        analysis::saveSnapshot(snap, {&eng});
    ASSERT_GT(saved.predictions, 0u);

    const std::string lean = tmpPath("compact_lean");
    const RunResult r = snaptool("compact " + snap +
                                 " --drop-predictions --out " + lean);
    EXPECT_EQ(r.status, 0) << r.out;

    const std::vector<std::uint8_t> img = slurpFile(lean);
    const analysis::SnapshotStats st =
        analysis::validateSnapshot(img.data(), img.size());
    EXPECT_EQ(st.predictions, 0u);
    EXPECT_EQ(st.records, saved.records);
    EXPECT_LT(img.size(), slurpFile(snap).size());

    std::remove(snap.c_str());
    std::remove(lean.c_str());
}

TEST(SnaptoolCleanup, RemoveFixtures)
{
    std::remove(savedSnapshot(analysis::SnapshotFormat::V1).c_str());
    std::remove(savedSnapshot(analysis::SnapshotFormat::V2).c_str());
}

} // namespace
} // namespace facile
