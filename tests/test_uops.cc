/**
 * @file
 * Instruction database tests: structural invariants over the whole
 * (mnemonic-form x microarchitecture) space, plus targeted checks of
 * µop decomposition, fusion, unlamination, and elimination rules.
 */
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "uops/info.h"

namespace facile::uops {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;
using facile::uarch::allUArchs;
using facile::uarch::config;

/** A representative instruction of each supported form. */
std::vector<Inst>
representativeInsts()
{
    std::vector<Inst> v = {
        make(Mnemonic::ADD, {R(RAX), R(RBX)}),
        make(Mnemonic::ADD, {R(RAX), M(mem(RBX, 8))}),
        make(Mnemonic::ADD, {M(mem(RBX, 8)), R(RAX)}),
        make(Mnemonic::ADD, {R(RAX), I(5, 1)}),
        make(Mnemonic::ADC, {R(RAX), R(RBX)}),
        make(Mnemonic::MOV, {R(RAX), R(RBX)}),
        make(Mnemonic::MOV, {R(RAX), M(mem(RBX, 0))}),
        make(Mnemonic::MOV, {M(mem(RBX, 0)), R(RAX)}),
        make(Mnemonic::XOR, {R(RAX), R(RAX)}),
        make(Mnemonic::LEA, {R(RAX), M(mem(RBX, 8))}),
        make(Mnemonic::LEA, {R(RAX), M(memIdx(RBX, RCX, 2, 8))}),
        make(Mnemonic::IMUL, {R(RAX), R(RBX)}),
        make(Mnemonic::MUL, {R(RCX)}),
        make(Mnemonic::DIV, {R(ECX)}),
        make(Mnemonic::DIV, {R(RCX)}),
        make(Mnemonic::SHL, {R(RAX), I(3, 1)}),
        make(Mnemonic::SHL, {R(RAX), R(CL)}),
        make(Mnemonic::XCHG, {R(RAX), R(RBX)}),
        make(Mnemonic::PUSH, {R(RAX)}),
        make(Mnemonic::POP, {R(RAX)}),
        make(Mnemonic::RET, {}),
        make(Mnemonic::CALL, {I(0, 4)}),
        makeCC(Mnemonic::JCC, Cond::NE, {I(-2, 1)}),
        make(Mnemonic::JMP, {I(-2, 1)}),
        makeCC(Mnemonic::SETCC, Cond::E, {R(AL)}),
        makeCC(Mnemonic::CMOVCC, Cond::E, {R(RAX), R(RBX)}),
        make(Mnemonic::POPCNT, {R(RAX), R(RBX)}),
        nop(1),
        nop(8),
        make(Mnemonic::MOVAPS, {R(XMM0), R(XMM1)}),
        make(Mnemonic::MOVAPS, {R(XMM0), M(mem(RBX, 0, 16))}),
        make(Mnemonic::MOVAPS, {M(mem(RBX, 0, 16)), R(XMM0)}),
        make(Mnemonic::ADDSD, {R(XMM0), R(XMM1)}),
        make(Mnemonic::MULPS, {R(XMM0), R(XMM1)}),
        make(Mnemonic::DIVSD, {R(XMM0), R(XMM1)}),
        make(Mnemonic::SQRTPD, {R(XMM0), R(XMM1)}),
        make(Mnemonic::PXOR, {R(XMM0), R(XMM0)}),
        make(Mnemonic::PXOR, {R(XMM0), R(XMM1)}),
        make(Mnemonic::PADDD, {R(XMM0), R(XMM1)}),
        make(Mnemonic::PMULLD, {R(XMM0), R(XMM1)}),
        make(Mnemonic::SHUFPS, {R(XMM0), R(XMM1), I(0x4E, 1)}),
        make(Mnemonic::VADDPS, {R(XMM0), R(XMM1), R(XMM2)}),
        make(Mnemonic::VFMADD231PD, {R(XMM0), R(XMM1), R(XMM2)}),
        make(Mnemonic::VFMADD231PD, {R(XMM0), R(XMM1), M(mem(RBX, 0, 16))}),
        make(Mnemonic::CVTSI2SD, {R(XMM0), R(RAX)}),
        make(Mnemonic::MOVD, {R(XMM0), R(EAX)}),
    };
    return v;
}

class AllArchs : public ::testing::TestWithParam<UArch>
{
};

INSTANTIATE_TEST_SUITE_P(UArch, AllArchs,
                         ::testing::ValuesIn(allUArchs()),
                         [](const auto &info) {
                             return config(info.param).abbrev;
                         });

TEST_P(AllArchs, DatabaseInvariants)
{
    const auto &cfg = config(GetParam());
    for (const Inst &inst : representativeInsts()) {
        InstrInfo info = lookup(inst, cfg);
        SCOPED_TRACE(toString(inst));

        EXPECT_GE(info.fusedUops, 1);
        EXPECT_GE(info.issueUops, info.fusedUops);
        EXPECT_GE(info.latency, 0);
        EXPECT_LE(info.latency, 64);
        if (info.eliminated) {
            EXPECT_TRUE(info.portUops.empty());
        } else {
            EXPECT_FALSE(info.portUops.empty());
        }
        for (const Uop &u : info.portUops) {
            EXPECT_NE(u.ports, 0);
            EXPECT_EQ(u.ports & ~cfg.allPorts(), 0)
                << "µop uses a port the µarch does not have";
        }
        EXPECT_EQ(info.needsComplexDecoder, info.fusedUops > 1);
        if (info.needsComplexDecoder)
            EXPECT_LE(info.nAvailableSimpleDecoders, cfg.nDecoders - 1);
    }
}

TEST(UopsDb, MicroFusionCounts)
{
    const auto &skl = config(UArch::SKL);
    // Load-op: 1 fused µop, 2 unfused (load + ALU).
    InstrInfo loadOp = lookup(make(Mnemonic::ADD, {R(RAX), M(mem(RBX))}), skl);
    EXPECT_EQ(loadOp.fusedUops, 1);
    EXPECT_EQ(loadOp.portUops.size(), 2u);
    // RMW: 2 fused µops, 4 unfused (load + ALU + STA + STD).
    InstrInfo rmw = lookup(make(Mnemonic::ADD, {M(mem(RBX)), R(RAX)}), skl);
    EXPECT_EQ(rmw.fusedUops, 2);
    EXPECT_EQ(rmw.portUops.size(), 4u);
    EXPECT_TRUE(rmw.needsComplexDecoder);
    // Pure store: 1 fused, 2 unfused.
    InstrInfo st = lookup(make(Mnemonic::MOV, {M(mem(RBX)), R(RAX)}), skl);
    EXPECT_EQ(st.fusedUops, 1);
    EXPECT_EQ(st.portUops.size(), 2u);
}

TEST(UopsDb, UnlaminationIndexedStores)
{
    // Indexed store unlaminates (issue 2) on every family.
    Inst st = make(Mnemonic::MOV, {M(memIdx(RBX, RCX, 4)), R(RAX)});
    for (UArch a : allUArchs()) {
        InstrInfo info = lookup(st, config(a));
        EXPECT_EQ(info.fusedUops, 1);
        EXPECT_EQ(info.issueUops, 2) << config(a).abbrev;
    }
    // Indexed load-op unlaminates only on the SnB family.
    Inst lo = make(Mnemonic::ADD, {R(RAX), M(memIdx(RBX, RCX, 4))});
    EXPECT_EQ(lookup(lo, config(UArch::SNB)).issueUops, 2);
    EXPECT_EQ(lookup(lo, config(UArch::IVB)).issueUops, 2);
    EXPECT_EQ(lookup(lo, config(UArch::SKL)).issueUops, 1);
    EXPECT_EQ(lookup(lo, config(UArch::RKL)).issueUops, 1);
}

TEST(UopsDb, MoveElimination)
{
    Inst mov = make(Mnemonic::MOV, {R(RAX), R(RBX)});
    EXPECT_FALSE(lookup(mov, config(UArch::SNB)).eliminated);
    EXPECT_TRUE(lookup(mov, config(UArch::IVB)).eliminated);
    EXPECT_TRUE(lookup(mov, config(UArch::SKL)).eliminated);
    EXPECT_FALSE(lookup(mov, config(UArch::ICL)).eliminated);

    Inst vmov = make(Mnemonic::MOVAPS, {R(XMM0), R(XMM1)});
    EXPECT_FALSE(lookup(vmov, config(UArch::SNB)).eliminated);
    EXPECT_TRUE(lookup(vmov, config(UArch::ICL)).eliminated);

    // 8-bit moves merge and cannot be eliminated.
    Inst mov8 = make(Mnemonic::MOV, {R(AL), R(BL)});
    EXPECT_FALSE(lookup(mov8, config(UArch::SKL)).eliminated);
}

TEST(UopsDb, ZeroIdiomsEliminated)
{
    for (UArch a : allUArchs()) {
        InstrInfo info =
            lookup(make(Mnemonic::XOR, {R(RAX), R(RAX)}), config(a));
        EXPECT_TRUE(info.eliminated) << config(a).abbrev;
        EXPECT_EQ(info.latency, 0);
    }
}

TEST(UopsDb, AdcCmovFamilyDifferences)
{
    Inst adc = make(Mnemonic::ADC, {R(RAX), R(RBX)});
    EXPECT_EQ(lookup(adc, config(UArch::SNB)).portUops.size(), 2u);
    EXPECT_EQ(lookup(adc, config(UArch::HSW)).portUops.size(), 1u);

    Inst cmov = makeCC(Mnemonic::CMOVCC, Cond::E, {R(RAX), R(RBX)});
    EXPECT_EQ(lookup(cmov, config(UArch::HSW)).portUops.size(), 2u);
    EXPECT_EQ(lookup(cmov, config(UArch::BDW)).portUops.size(), 1u);
    EXPECT_EQ(lookup(cmov, config(UArch::SKL)).portUops.size(), 1u);
}

TEST(UopsDb, SlowLeaLatency)
{
    const auto &skl = config(UArch::SKL);
    InstrInfo fast = lookup(make(Mnemonic::LEA, {R(RAX), M(mem(RBX, 8))}),
                            skl);
    EXPECT_EQ(fast.latency, 1);
    InstrInfo slow = lookup(
        make(Mnemonic::LEA, {R(RAX), M(memIdx(RBX, RCX, 1, 8))}), skl);
    EXPECT_EQ(slow.latency, 3);
}

TEST(UopsDb, FpLatenciesEvolve)
{
    Inst addsd = make(Mnemonic::ADDSD, {R(XMM0), R(XMM1)});
    EXPECT_EQ(lookup(addsd, config(UArch::SNB)).latency, 3);
    EXPECT_EQ(lookup(addsd, config(UArch::SKL)).latency, 4);
    Inst mulsd = make(Mnemonic::MULSD, {R(XMM0), R(XMM1)});
    EXPECT_EQ(lookup(mulsd, config(UArch::SNB)).latency, 5);
    EXPECT_EQ(lookup(mulsd, config(UArch::SKL)).latency, 4);
}

TEST(UopsDb, MacroFusionRules)
{
    const auto &skl = config(UArch::SKL);
    const auto &snb = config(UArch::SNB);
    Inst cmp = make(Mnemonic::CMP, {R(RAX), R(RBX)});
    Inst cmpMem = make(Mnemonic::CMP, {R(RAX), M(mem(RBX))});
    Inst inc = make(Mnemonic::INC, {R(RAX)});
    Inst test = make(Mnemonic::TEST, {R(RAX), R(RAX)});
    Inst mov = make(Mnemonic::MOV, {R(RAX), R(RBX)});
    Inst je = makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)});
    Inst jb = makeCC(Mnemonic::JCC, Cond::B, {I(-2, 1)});
    Inst js = makeCC(Mnemonic::JCC, Cond::S, {I(-2, 1)});

    EXPECT_TRUE(macroFusesWith(cmp, je, skl));
    EXPECT_TRUE(macroFusesWith(cmp, jb, skl));
    EXPECT_FALSE(macroFusesWith(cmp, js, skl)); // sign cc: no fusion
    EXPECT_TRUE(macroFusesWith(test, js, skl)); // test fuses with all
    EXPECT_FALSE(macroFusesWith(inc, jb, skl)); // inc + CF-reading cc
    EXPECT_TRUE(macroFusesWith(inc, je, skl));
    EXPECT_FALSE(macroFusesWith(mov, je, skl));
    // Memory forms fuse on HSW+ but not on the SnB family.
    EXPECT_TRUE(macroFusesWith(cmpMem, je, skl));
    EXPECT_FALSE(macroFusesWith(cmpMem, je, snb));
}

TEST(UopsDb, NopIsEliminatedButIssues)
{
    const auto &skl = config(UArch::SKL);
    InstrInfo info = lookup(nop(1), skl);
    EXPECT_TRUE(info.eliminated);
    EXPECT_EQ(info.fusedUops, 1);
    EXPECT_EQ(info.issueUops, 1);
}

TEST(UopsDb, DivIsMicrocoded)
{
    const auto &skl = config(UArch::SKL);
    InstrInfo d32 = lookup(make(Mnemonic::DIV, {R(ECX)}), skl);
    EXPECT_GE(d32.fusedUops, 8);
    EXPECT_EQ(d32.nAvailableSimpleDecoders, 0);
    InstrInfo d64 = lookup(make(Mnemonic::DIV, {R(RCX)}), skl);
    EXPECT_GT(d64.fusedUops, d32.fusedUops);
    EXPECT_GT(d64.latency, d32.latency);
}

} // namespace
} // namespace facile::uops
