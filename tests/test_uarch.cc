/**
 * @file
 * Microarchitecture configuration tests: Table 1 metadata, family
 * parameter sanity (parameterized over all nine µarches), erratum
 * flags, move-elimination evolution, and the LSD unroll rule.
 */
#include <gtest/gtest.h>

#include "uarch/config.h"

namespace facile::uarch {
namespace {

class AllArchs : public ::testing::TestWithParam<UArch>
{
};

INSTANTIATE_TEST_SUITE_P(UArch, AllArchs,
                         ::testing::ValuesIn(allUArchs()),
                         [](const auto &info) {
                             return config(info.param).abbrev;
                         });

TEST_P(AllArchs, BasicSanity)
{
    const MicroArchConfig &c = config(GetParam());
    EXPECT_GE(c.issueWidth, 4);
    EXPECT_LE(c.issueWidth, 6);
    EXPECT_GE(c.nDecoders, 4);
    EXPECT_EQ(c.predecodeWidth, 5);
    EXPECT_GE(c.dsbWidth, 4);
    EXPECT_GE(c.idqWidth, 28);
    EXPECT_GE(c.loadLatency, 4);
    EXPECT_GT(c.rsSize, 0);
    EXPECT_GT(c.robSize, c.rsSize);
    EXPECT_EQ(c.retireWidth, c.issueWidth);
    EXPECT_GE(c.nPorts, 6);
    EXPECT_LE(c.nPorts, 10);
    EXPECT_GE(c.year, 2011);
    EXPECT_LE(c.year, 2021);
}

TEST_P(AllArchs, NewerArchesAreAtLeastAsWide)
{
    const MicroArchConfig &c = config(GetParam());
    const MicroArchConfig &snb = config(UArch::SNB);
    EXPECT_GE(c.issueWidth, snb.issueWidth);
    EXPECT_GE(c.idqWidth, snb.idqWidth);
    EXPECT_GE(c.nPorts, snb.nPorts);
}

TEST(UArchConfig, TableOneRoster)
{
    EXPECT_EQ(allUArchs().size(), 9u);
    EXPECT_STREQ(config(UArch::RKL).name, "Rocket Lake");
    EXPECT_STREQ(config(UArch::SNB).name, "Sandy Bridge");
    EXPECT_EQ(config(UArch::SKL).year, 2015);
    EXPECT_EQ(config(UArch::CLX).year, 2019);
}

TEST(UArchConfig, SkylakeErrata)
{
    // SKL150: the LSD is disabled on Skylake-family cores; the JCC
    // erratum mitigation applies there as well.
    EXPECT_FALSE(config(UArch::SKL).lsdEnabled);
    EXPECT_FALSE(config(UArch::CLX).lsdEnabled);
    EXPECT_TRUE(config(UArch::SKL).jccErratum);
    EXPECT_TRUE(config(UArch::CLX).jccErratum);
    EXPECT_TRUE(config(UArch::HSW).lsdEnabled);
    EXPECT_FALSE(config(UArch::HSW).jccErratum);
    EXPECT_TRUE(config(UArch::ICL).lsdEnabled);
    EXPECT_FALSE(config(UArch::RKL).jccErratum);
}

TEST(UArchConfig, MoveEliminationEvolution)
{
    EXPECT_FALSE(config(UArch::SNB).gprMovElim); // introduced with IVB
    EXPECT_TRUE(config(UArch::IVB).gprMovElim);
    EXPECT_TRUE(config(UArch::SKL).gprMovElim);
    EXPECT_FALSE(config(UArch::ICL).gprMovElim); // disabled again
    EXPECT_TRUE(config(UArch::ICL).vecMovElim);
}

TEST(UArchConfig, MacroFusionOnLastDecoderRestriction)
{
    EXPECT_FALSE(config(UArch::SNB).macroFusibleOnLastDecoder);
    EXPECT_FALSE(config(UArch::IVB).macroFusibleOnLastDecoder);
    EXPECT_TRUE(config(UArch::HSW).macroFusibleOnLastDecoder);
}

TEST(UArchConfig, FromAbbrev)
{
    EXPECT_EQ(fromAbbrev("SKL"), UArch::SKL);
    EXPECT_EQ(fromAbbrev("RKL"), UArch::RKL);
    EXPECT_THROW(fromAbbrev("XYZ"), std::invalid_argument);
}

TEST(UArchConfig, PortMaskHelpers)
{
    EXPECT_EQ(portCount(0b0110011), 4);
    EXPECT_EQ(portMaskName(0b100011), "p015");
    EXPECT_EQ(portCount(config(UArch::SKL).allPorts()), 8);
    EXPECT_EQ(portCount(config(UArch::RKL).allPorts()), 10);
}

TEST(UArchConfig, LsdUnrollIncreasesStreamRate)
{
    const MicroArchConfig &c = config(UArch::HSW); // issue width 4
    // A 1-µop loop streams 1 µop/cycle un-unrolled; unrolling must give
    // a multiple of the issue width.
    int u1 = c.lsdUnrollFactor(1);
    EXPECT_GE(u1, 4);
    // n divisible by the issue width needs no unrolling.
    EXPECT_EQ(c.lsdUnrollFactor(8), 1);
    // Loops too large to replicate inside the IDQ stay un-unrolled.
    EXPECT_EQ(c.lsdUnrollFactor(c.idqWidth), 1);
}

TEST(UArchConfig, LsdUnrollNeverOverflowsIdq)
{
    for (UArch a : allUArchs()) {
        const MicroArchConfig &c = config(a);
        if (!c.lsdEnabled)
            continue;
        for (int n = 1; n <= c.idqWidth; ++n)
            EXPECT_LE(n * c.lsdUnrollFactor(n), c.idqWidth)
                << config(a).abbrev << " n=" << n;
    }
}

} // namespace
} // namespace facile::uarch
