/**
 * @file
 * Predecoder model tests against hand-computed values of the paper's
 * formulas (section 4.3).
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "facile/predec.h"
#include "isa/builder.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch = UArch::SKL)
{
    return bb::analyze(insts, arch);
}

TEST(Predec, SixteenByteAlignedSimpleCase)
{
    // Four 4-byte instructions = 16 bytes: one block, 4 ends, no
    // crossings: ceil(4/5) = 1 cycle per iteration, u = 1.
    std::vector<Inst> insts(4, nop(4));
    EXPECT_DOUBLE_EQ(predec(blockOf(insts), true), 1.0);
    EXPECT_DOUBLE_EQ(predec(blockOf(insts), false), 1.0);
}

TEST(Predec, MoreThanFiveInstructionsPerBlock)
{
    // Eight 2-byte instructions = 16 bytes: L(0)=8 -> ceil(8/5)=2.
    std::vector<Inst> insts(8, nop(2));
    EXPECT_DOUBLE_EQ(predec(blockOf(insts), true), 2.0);
}

TEST(Predec, UnrollingAlignment)
{
    // One 3-byte instruction (48 01 d8): u = lcm(3,16)/3 = 16 copies,
    // 48 bytes = 3 blocks. Instances start at 0,3,...,45; the nominal
    // opcode sits at start+1 (REX is a prefix), last byte at start+2.
    //   Block 0: ends at 2,5,8,11,14          -> L=5; O=0 (instr @15 has
    //            its opcode at 16, i.e. already in block 1)
    //   Block 1: ends at 17,20,23,26,29       -> L=5; instr @30 ends at
    //            32 with opcode at 31          -> O=1 => 6 slots
    //   Block 2: ends at 32,35,38,41,44,47    -> L=6
    // Cycles: ceil(5/5)+ceil(6/5)+ceil(6/5) = 1+2+2 = 5; 5/16 = 0.3125.
    std::vector<Inst> insts = {make(Mnemonic::ADD, {R(RAX), R(RBX)})};
    bb::BasicBlock blk = blockOf(insts);
    ASSERT_EQ(blk.lengthBytes(), 3);
    EXPECT_DOUBLE_EQ(predec(blk, true), 0.3125);
}

TEST(Predec, LoopModeUsesFixedLayout)
{
    // 24 bytes: blocks [0,16) and [16,24). Six 4-byte nops.
    std::vector<Inst> insts(6, nop(4));
    bb::BasicBlock blk = blockOf(insts);
    // L = {4, 2}, O = {0, 0}: ceil(4/5) + ceil(2/5) = 2 cycles.
    EXPECT_DOUBLE_EQ(predec(blk, false), 2.0);
}

TEST(Predec, LcpPenaltyThreeCyclesSerial)
{
    // A block consisting only of LCP instructions: each pays the 3-cycle
    // penalty minus the pipelined overlap with the previous block.
    // Four LCP instructions of 5 bytes each = 20 bytes; u = 4 copies =
    // 80 bytes = 5 blocks.
    std::vector<Inst> insts(4, make(Mnemonic::ADD, {R(AX), I(0x1234, 2)}));
    bb::BasicBlock blk = blockOf(insts);
    ASSERT_TRUE(blk.insts[0].dec->lcp);
    double tp = predec(blk, true);
    // Each iteration has 4 LCP instructions; the penalty dominates:
    // close to 3 cycles per LCP plus the base predecode cycles, minus
    // the pipelined overlap with the previous block.
    EXPECT_GT(tp, 8.0);
    EXPECT_LE(tp, 14.0);
}

TEST(Predec, SimplePredecIsLengthOver16)
{
    std::vector<Inst> insts(6, nop(4));
    EXPECT_DOUBLE_EQ(simplePredec(blockOf(insts)), 24.0 / 16.0);
}

TEST(Predec, SimplePredecUnderestimatesDenseBlocks)
{
    // SimplePredec assumes one block per cycle; with > 5 instructions
    // per 16 bytes the full model must predict more cycles.
    std::vector<Inst> insts(16, nop(2));
    bb::BasicBlock blk = blockOf(insts);
    EXPECT_GT(predec(blk, true), simplePredec(blk));
}

TEST(Predec, EmptyBlock)
{
    bb::BasicBlock blk;
    blk.arch = UArch::SKL;
    EXPECT_DOUBLE_EQ(predec(blk, true), 0.0);
    EXPECT_DOUBLE_EQ(simplePredec(blk), 0.0);
}

TEST(Predec, CrossingInstructionCountsInBothBlocks)
{
    // 5-byte nops: 16/5 -> instruction at offset 15 crosses into block 1
    // with its opcode in block 0.
    std::vector<Inst> insts(16, nop(5)); // 80 bytes, exactly 5 blocks
    bb::BasicBlock blk = blockOf(insts);
    // Per 16-byte block: slots alternate between 3 and 4 with crossings:
    // total slots = 16 ends + 4 crossings (every block boundary not
    // aligned with an instruction start) = 20 over 5 blocks.
    double tp = predec(blk, true);
    EXPECT_GE(tp, 5.0 / 16.0 * 5); // at least one cycle per block
}

} // namespace
} // namespace facile::model
