/**
 * @file
 * Read/write-set semantics tests: RMW reads, partial-width merges,
 * flag groups, zero idioms, and stack-engine values.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "isa/builder.h"
#include "isa/semantics.h"

namespace facile::isa {
namespace {

bool
contains(const std::vector<int> &v, int x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Semantics, AddRegRegReadsBothWritesDstAndFlags)
{
    RwSets rw = instRw(make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    EXPECT_TRUE(contains(rw.reads, 0));
    EXPECT_TRUE(contains(rw.reads, 3));
    EXPECT_TRUE(contains(rw.writes, 0));
    EXPECT_TRUE(contains(rw.writes, kValCf));
    EXPECT_TRUE(contains(rw.writes, kValFlags));
    EXPECT_FALSE(rw.depBreaking);
}

TEST(Semantics, MovDoesNotReadDst)
{
    RwSets rw = instRw(make(Mnemonic::MOV, {R(RAX), R(RBX)}));
    EXPECT_FALSE(contains(rw.reads, 0));
    EXPECT_TRUE(contains(rw.reads, 3));
    EXPECT_TRUE(contains(rw.writes, 0));
    EXPECT_TRUE(rw.writes.size() == 1);
}

TEST(Semantics, PartialWidthWriteMerges)
{
    // mov al, bl reads the old rax (merge into low byte).
    RwSets rw = instRw(make(Mnemonic::MOV, {R(AL), R(BL)}));
    EXPECT_TRUE(contains(rw.reads, 0));
    // mov eax, ebx zeroes the upper half: no merge.
    RwSets rw32 = instRw(make(Mnemonic::MOV, {R(EAX), R(EBX)}));
    EXPECT_FALSE(contains(rw32.reads, 0));
}

TEST(Semantics, IncPreservesCf)
{
    RwSets rw = instRw(make(Mnemonic::INC, {R(RAX)}));
    EXPECT_FALSE(contains(rw.writes, kValCf));
    EXPECT_TRUE(contains(rw.writes, kValFlags));
}

TEST(Semantics, AdcReadsCf)
{
    RwSets rw = instRw(make(Mnemonic::ADC, {R(RAX), R(RBX)}));
    EXPECT_TRUE(contains(rw.reads, kValCf));
}

TEST(Semantics, CondReadsDependOnCc)
{
    RwSets jb = instRw(makeCC(Mnemonic::JCC, Cond::B, {I(-2, 1)}));
    EXPECT_TRUE(contains(jb.reads, kValCf));
    EXPECT_FALSE(contains(jb.reads, kValFlags));

    RwSets je = instRw(makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)}));
    EXPECT_FALSE(contains(je.reads, kValCf));
    EXPECT_TRUE(contains(je.reads, kValFlags));

    RwSets jbe = instRw(makeCC(Mnemonic::JCC, Cond::BE, {I(-2, 1)}));
    EXPECT_TRUE(contains(jbe.reads, kValCf));
    EXPECT_TRUE(contains(jbe.reads, kValFlags));
}

TEST(Semantics, ZeroIdioms)
{
    EXPECT_TRUE(isZeroIdiom(make(Mnemonic::XOR, {R(RAX), R(RAX)})));
    EXPECT_TRUE(isZeroIdiom(make(Mnemonic::SUB, {R(EAX), R(EAX)})));
    EXPECT_TRUE(isZeroIdiom(make(Mnemonic::PXOR, {R(XMM0), R(XMM0)})));
    EXPECT_TRUE(isZeroIdiom(
        make(Mnemonic::VPXOR, {R(XMM1), R(XMM0), R(XMM0)})));
    EXPECT_FALSE(isZeroIdiom(make(Mnemonic::XOR, {R(RAX), R(RBX)})));
    // 16-bit forms merge the upper bits: not dependency-breaking.
    EXPECT_FALSE(isZeroIdiom(make(Mnemonic::XOR, {R(AX), R(AX)})));
    EXPECT_FALSE(isZeroIdiom(make(Mnemonic::ADD, {R(RAX), R(RAX)})));
}

TEST(Semantics, ZeroIdiomBreaksDependency)
{
    RwSets rw = instRw(make(Mnemonic::XOR, {R(RAX), R(RAX)}));
    EXPECT_TRUE(rw.depBreaking);
    EXPECT_FALSE(contains(rw.reads, 0));
    EXPECT_TRUE(contains(rw.writes, 0));
}

TEST(Semantics, MemOperandReadsAddressRegs)
{
    RwSets rw = instRw(
        make(Mnemonic::MOV, {R(RAX), M(memIdx(RBX, RCX, 4, 8))}));
    EXPECT_TRUE(contains(rw.reads, 3)); // rbx
    EXPECT_TRUE(contains(rw.reads, 1)); // rcx
}

TEST(Semantics, StoreReadsDataAndAddress)
{
    RwSets rw = instRw(make(Mnemonic::MOV, {M(mem(RBX, 8)), R(RDX)}));
    EXPECT_TRUE(contains(rw.reads, 3));
    EXPECT_TRUE(contains(rw.reads, 2));
    EXPECT_TRUE(rw.writes.empty()); // memory is not a tracked value
}

TEST(Semantics, PushPopUseRsp)
{
    RwSets push = instRw(make(Mnemonic::PUSH, {R(RAX)}));
    EXPECT_TRUE(contains(push.reads, 4));
    EXPECT_TRUE(contains(push.writes, 4));
    RwSets pop = instRw(make(Mnemonic::POP, {R(RAX)}));
    EXPECT_TRUE(contains(pop.writes, 0));
    EXPECT_TRUE(contains(pop.writes, 4));
}

TEST(Semantics, DivReadsAndWritesRaxRdx)
{
    RwSets rw = instRw(make(Mnemonic::DIV, {R(RCX)}));
    EXPECT_TRUE(contains(rw.reads, 0));
    EXPECT_TRUE(contains(rw.reads, 2));
    EXPECT_TRUE(contains(rw.writes, 0));
    EXPECT_TRUE(contains(rw.writes, 2));
}

TEST(Semantics, ShiftByClReadsCl)
{
    RwSets rw = instRw(make(Mnemonic::SHL, {R(RAX), R(CL)}));
    EXPECT_TRUE(contains(rw.reads, 1));
}

TEST(Semantics, FmaReadsAccumulator)
{
    RwSets rw = instRw(
        make(Mnemonic::VFMADD231PD, {R(XMM0), R(XMM1), R(XMM2)}));
    EXPECT_TRUE(contains(rw.reads, 16 + 0));
    EXPECT_TRUE(contains(rw.reads, 16 + 1));
    EXPECT_TRUE(contains(rw.reads, 16 + 2));
    EXPECT_TRUE(contains(rw.writes, 16 + 0));
}

TEST(Semantics, VexNonFmaDoesNotReadDst)
{
    RwSets rw =
        instRw(make(Mnemonic::VADDPD, {R(XMM0), R(XMM1), R(XMM2)}));
    EXPECT_FALSE(contains(rw.reads, 16 + 0));
}

TEST(Semantics, CmovReadsDstSrcAndFlags)
{
    RwSets rw = instRw(
        makeCC(Mnemonic::CMOVCC, Cond::E, {R(RAX), R(RBX)}));
    EXPECT_TRUE(contains(rw.reads, 0));
    EXPECT_TRUE(contains(rw.reads, 3));
    EXPECT_TRUE(contains(rw.reads, kValFlags));
}

TEST(Semantics, NopReadsAndWritesNothing)
{
    RwSets rw = instRw(nop(5));
    EXPECT_TRUE(rw.reads.empty());
    EXPECT_TRUE(rw.writes.empty());
}

} // namespace
} // namespace facile::isa
