/**
 * @file
 * Encoder unit tests: exact byte sequences for representative forms,
 * REX/VEX/ModRM/SIB handling, NOP lengths, and LCP-carrying encodings.
 */
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/encoder.h"

namespace facile::isa {
namespace {

using Bytes = std::vector<std::uint8_t>;

TEST(Encoder, AddRegReg64)
{
    // add rax, rbx -> REX.W 01 d8
    EXPECT_EQ(encode(make(Mnemonic::ADD, {R(RAX), R(RBX)})),
              (Bytes{0x48, 0x01, 0xD8}));
}

TEST(Encoder, AddRegReg32NoRex)
{
    // add eax, ebx -> 01 d8
    EXPECT_EQ(encode(make(Mnemonic::ADD, {R(EAX), R(EBX)})),
              (Bytes{0x01, 0xD8}));
}

TEST(Encoder, AddHighRegsUseRexRB)
{
    // add r8, r9 -> REX.WRB 01 c8
    EXPECT_EQ(encode(make(Mnemonic::ADD, {R(R8), R(R9)})),
              (Bytes{0x4D, 0x01, 0xC8}));
}

TEST(Encoder, XorZeroIdiom32)
{
    // xor ecx, ecx -> 31 c9
    EXPECT_EQ(encode(make(Mnemonic::XOR, {R(ECX), R(ECX)})),
              (Bytes{0x31, 0xC9}));
}

TEST(Encoder, AluImm8SignExtended)
{
    // add rax, 5 -> REX.W 83 c0 05
    EXPECT_EQ(encode(make(Mnemonic::ADD, {R(RAX), I(5, 1)})),
              (Bytes{0x48, 0x83, 0xC0, 0x05}));
}

TEST(Encoder, AluImm32)
{
    // add rax, 0x1234 (imm32) -> REX.W 81 c0 34 12 00 00
    EXPECT_EQ(encode(make(Mnemonic::ADD, {R(RAX), I(0x1234, 4)})),
              (Bytes{0x48, 0x81, 0xC0, 0x34, 0x12, 0x00, 0x00}));
}

TEST(Encoder, AluImm16HasLcpPrefix)
{
    // add ax, 0x1234 -> 66 81 c0 34 12 : the LCP form.
    EXPECT_EQ(encode(make(Mnemonic::ADD, {R(AX), I(0x1234, 2)})),
              (Bytes{0x66, 0x81, 0xC0, 0x34, 0x12}));
}

TEST(Encoder, MovImm16HasLcpPrefix)
{
    // mov cx, 0x1234 -> 66 b9 34 12
    EXPECT_EQ(encode(make(Mnemonic::MOV, {R(CX), I(0x1234, 2)})),
              (Bytes{0x66, 0xB9, 0x34, 0x12}));
}

TEST(Encoder, MemSimpleBase)
{
    // mov rax, [rbx] -> REX.W 8b 03
    EXPECT_EQ(encode(make(Mnemonic::MOV, {R(RAX), M(mem(RBX))})),
              (Bytes{0x48, 0x8B, 0x03}));
}

TEST(Encoder, MemDisp8)
{
    // mov rax, [rbx+8] -> REX.W 8b 43 08
    EXPECT_EQ(encode(make(Mnemonic::MOV, {R(RAX), M(mem(RBX, 8))})),
              (Bytes{0x48, 0x8B, 0x43, 0x08}));
}

TEST(Encoder, MemDisp32)
{
    // mov rax, [rbx+0x200] -> REX.W 8b 83 00 02 00 00
    EXPECT_EQ(encode(make(Mnemonic::MOV, {R(RAX), M(mem(RBX, 0x200))})),
              (Bytes{0x48, 0x8B, 0x83, 0x00, 0x02, 0x00, 0x00}));
}

TEST(Encoder, MemRspNeedsSib)
{
    // mov rax, [rsp] -> REX.W 8b 04 24
    EXPECT_EQ(encode(make(Mnemonic::MOV, {R(RAX), M(mem(RSP))})),
              (Bytes{0x48, 0x8B, 0x04, 0x24}));
}

TEST(Encoder, MemRbpNeedsDisp8)
{
    // mov rax, [rbp] -> REX.W 8b 45 00 (mod=01 with disp8 0)
    EXPECT_EQ(encode(make(Mnemonic::MOV, {R(RAX), M(mem(RBP))})),
              (Bytes{0x48, 0x8B, 0x45, 0x00}));
}

TEST(Encoder, MemIndexScale)
{
    // mov rax, [rbx+rcx*4] -> REX.W 8b 04 8b
    EXPECT_EQ(
        encode(make(Mnemonic::MOV, {R(RAX), M(memIdx(RBX, RCX, 4))})),
        (Bytes{0x48, 0x8B, 0x04, 0x8B}));
}

TEST(Encoder, RspIndexRejected)
{
    EXPECT_THROW(encode(make(Mnemonic::MOV, {R(RAX), M(memIdx(RBX, RSP))})),
                 EncodeError);
}

TEST(Encoder, LeaThreeComponent)
{
    // lea rax, [rbx+rcx*2+8] -> REX.W 8d 44 4b 08
    EXPECT_EQ(
        encode(make(Mnemonic::LEA, {R(RAX), M(memIdx(RBX, RCX, 2, 8))})),
        (Bytes{0x48, 0x8D, 0x44, 0x4B, 0x08}));
}

TEST(Encoder, PushPopRegs)
{
    EXPECT_EQ(encode(make(Mnemonic::PUSH, {R(RAX)})), (Bytes{0x50}));
    EXPECT_EQ(encode(make(Mnemonic::PUSH, {R(R9)})), (Bytes{0x41, 0x51}));
    EXPECT_EQ(encode(make(Mnemonic::POP, {R(RBX)})), (Bytes{0x5B}));
}

TEST(Encoder, NopLengthsExact)
{
    for (int len = 1; len <= 15; ++len) {
        Bytes b = encode(nop(len));
        EXPECT_EQ(static_cast<int>(b.size()), len) << "nop length " << len;
    }
    EXPECT_EQ(encode(nop(1)), (Bytes{0x90}));
    EXPECT_EQ(encode(nop(3)), (Bytes{0x0F, 0x1F, 0x00}));
}

TEST(Encoder, JccRel8AndRel32)
{
    EXPECT_EQ(encode(makeCC(Mnemonic::JCC, Cond::E, {I(-2, 1)})),
              (Bytes{0x74, 0xFE}));
    Bytes far = encode(makeCC(Mnemonic::JCC, Cond::NE, {I(1000, 4)}));
    EXPECT_EQ(far.size(), 6u);
    EXPECT_EQ(far[0], 0x0F);
    EXPECT_EQ(far[1], 0x85);
}

TEST(Encoder, ShiftImmAndCl)
{
    // shl rax, 7 -> REX.W C1 E0 07
    EXPECT_EQ(encode(make(Mnemonic::SHL, {R(RAX), I(7, 1)})),
              (Bytes{0x48, 0xC1, 0xE0, 0x07}));
    // shr rbx, cl -> REX.W D3 EB
    EXPECT_EQ(encode(make(Mnemonic::SHR, {R(RBX), R(CL)})),
              (Bytes{0x48, 0xD3, 0xEB}));
}

TEST(Encoder, SseAddsd)
{
    // addsd xmm0, xmm1 -> F2 0F 58 C1
    EXPECT_EQ(encode(make(Mnemonic::ADDSD, {R(XMM0), R(XMM1)})),
              (Bytes{0xF2, 0x0F, 0x58, 0xC1}));
}

TEST(Encoder, SsePxor)
{
    // pxor xmm2, xmm3 -> 66 0F EF D3
    EXPECT_EQ(encode(make(Mnemonic::PXOR, {R(XMM2), R(XMM3)})),
              (Bytes{0x66, 0x0F, 0xEF, 0xD3}));
}

TEST(Encoder, Vex2ByteForm)
{
    // vaddps xmm0, xmm1, xmm2 -> C5 F0 58 C2
    EXPECT_EQ(
        encode(make(Mnemonic::VADDPS, {R(XMM0), R(XMM1), R(XMM2)})),
        (Bytes{0xC5, 0xF0, 0x58, 0xC2}));
}

TEST(Encoder, Vex3ByteFma)
{
    // vfmadd231pd xmm0, xmm1, xmm2 -> C4 E2 F1 B8 C2 (W1, map 0F38)
    EXPECT_EQ(encode(make(Mnemonic::VFMADD231PD,
                          {R(XMM0), R(XMM1), R(XMM2)})),
              (Bytes{0xC4, 0xE2, 0xF1, 0xB8, 0xC2}));
}

TEST(Encoder, VexYmmSetsL)
{
    Bytes b = encode(make(Mnemonic::VADDPS, {R(YMM0), R(YMM1), R(YMM2)}));
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0xC5);
    EXPECT_TRUE(b[1] & 0x04) << "VEX.L must be set for ymm";
}

TEST(Encoder, LengthsAreWithinLimits)
{
    // Worst case: 66 prefix + REX + SIB + disp32 forms stay within 15.
    Bytes b = encode(make(Mnemonic::ADD,
                          {M(memIdx(R13, R14, 8, 0x12345, 2)),
                           R(gpr(2, 10))}));
    EXPECT_LE(b.size(), 15u);
}

TEST(Encoder, EncodeBlockConcatenates)
{
    std::vector<Inst> insts = {make(Mnemonic::ADD, {R(RAX), R(RBX)}),
                               nop(3)};
    Bytes b = encodeBlock(insts);
    EXPECT_EQ(b.size(), 6u);
}

} // namespace
} // namespace facile::isa
