/**
 * @file
 * DSB, LSD, and Issue component tests (paper sections 4.5-4.7).
 */
#include <gtest/gtest.h>

#include "bb/basic_block.h"
#include "facile/simple_components.h"
#include "isa/builder.h"

namespace facile::model {
namespace {

using namespace facile::isa;
using facile::uarch::UArch;

bb::BasicBlock
blockOf(std::vector<Inst> insts, UArch arch)
{
    return bb::analyze(insts, arch);
}

std::vector<Inst>
simpleBody(int n)
{
    std::vector<Inst> v(static_cast<std::size_t>(n),
                        make(Mnemonic::ADD, {R(RAX), R(RBX)}));
    return v;
}

TEST(Dsb, ShortBlockUsesCeiling)
{
    // 7 µops, SKL DSB width 6, block < 32 bytes: ceil(7/6) = 2.
    bb::BasicBlock blk = blockOf(simpleBody(7), UArch::SKL);
    ASSERT_LT(blk.lengthBytes(), 32);
    EXPECT_DOUBLE_EQ(dsb(blk), 2.0);
}

TEST(Dsb, LongBlockIsFractional)
{
    // 11 3-byte adds = 33 bytes >= 32: 11/6.
    bb::BasicBlock blk = blockOf(simpleBody(11), UArch::SKL);
    ASSERT_GE(blk.lengthBytes(), 32);
    EXPECT_DOUBLE_EQ(dsb(blk), 11.0 / 6.0);
}

TEST(Dsb, WidthDiffersAcrossFamilies)
{
    // HSW DSB width 4 vs SKL width 6.
    bb::BasicBlock hsw = blockOf(simpleBody(11), UArch::HSW);
    EXPECT_DOUBLE_EQ(dsb(hsw), 11.0 / 4.0);
}

TEST(Lsd, SmallLoopUnrolls)
{
    // 1 µop on HSW (issue width 4): the LSD unrolls; ceil(u/4)/u with
    // u = 4k gives exactly 0.25 cycles/iteration.
    bb::BasicBlock blk = blockOf(simpleBody(1), UArch::HSW);
    EXPECT_DOUBLE_EQ(lsd(blk), 0.25);
}

TEST(Lsd, IterationBoundaryCostsWithoutUnrolling)
{
    // 6 µops, issue 4: without unrolling ceil(6/4) = 2 cycles -> 2.0;
    // unrolling by 2 gives ceil(12/4)/2 = 1.5.
    bb::BasicBlock blk = blockOf(simpleBody(6), UArch::HSW);
    EXPECT_DOUBLE_EQ(lsd(blk), 1.5);
}

TEST(Lsd, MultipleOfIssueWidthIsExact)
{
    bb::BasicBlock blk = blockOf(simpleBody(8), UArch::HSW);
    EXPECT_DOUBLE_EQ(lsd(blk), 2.0);
}

TEST(Lsd, EligibilityBoundedByIdq)
{
    // HSW IDQ = 56 µops.
    EXPECT_TRUE(lsdEligible(blockOf(simpleBody(56), UArch::HSW)));
    EXPECT_FALSE(lsdEligible(blockOf(simpleBody(57), UArch::HSW)));
}

TEST(Issue, CountsUnlaminatedUops)
{
    // Indexed store: 1 fused, 2 at issue; SKL issue width 4.
    std::vector<Inst> insts = {
        make(Mnemonic::MOV, {M(memIdx(RBX, RCX, 8)), R(RAX)}),
        make(Mnemonic::ADD, {R(RDX), R(RSI)}),
    };
    bb::BasicBlock blk = blockOf(insts, UArch::SKL);
    EXPECT_DOUBLE_EQ(issue(blk), 3.0 / 4.0);
}

TEST(Issue, WiderIssueOnIceLake)
{
    bb::BasicBlock skl = blockOf(simpleBody(10), UArch::SKL);
    bb::BasicBlock icl = blockOf(simpleBody(10), UArch::ICL);
    EXPECT_DOUBLE_EQ(issue(skl), 2.5);
    EXPECT_DOUBLE_EQ(issue(icl), 2.0);
}

TEST(Issue, EliminatedUopsStillIssue)
{
    // NOPs and eliminated movs consume issue bandwidth.
    std::vector<Inst> insts = {
        nop(1), nop(1),
        make(Mnemonic::MOV, {R(RAX), R(RBX)}), // eliminated on SKL
        make(Mnemonic::MOV, {R(RCX), R(RDX)}),
    };
    bb::BasicBlock blk = blockOf(insts, UArch::SKL);
    EXPECT_DOUBLE_EQ(issue(blk), 1.0);
}

TEST(Lsd, DominatesIssueWhenActive)
{
    // LSD >= Issue for every size (the LSD can never beat issue width).
    for (int n = 1; n <= 40; ++n) {
        bb::BasicBlock blk = blockOf(simpleBody(n), UArch::HSW);
        EXPECT_GE(lsd(blk) + 1e-12, issue(blk)) << "n=" << n;
    }
}

} // namespace
} // namespace facile::model
