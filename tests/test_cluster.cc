/**
 * @file
 * Cluster-mode tests: rendezvous routing properties, the facile_lb
 * router data plane (bit-identity through backends, id isolation
 * across clients, failover on backend death with zero caller-visible
 * failures), snapshot-over-the-wire bootstrap (bit-identical to a
 * local save, torn images rejected before touching disk), and the
 * replica convergence fold.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/snapshot.h"
#include "bhive/generator.h"
#include "cluster/bootstrap.h"
#include "cluster/membership.h"
#include "cluster/router.h"
#include "facile/component.h"
#include "server/client.h"
#include "server/resilient_client.h"
#include "server/server.h"

namespace facile::cluster {
namespace {

using model::Prediction;

const std::vector<bhive::Benchmark> &
suite()
{
    static const auto s = bhive::generateSuite(7777, 2);
    return s;
}

std::string
freshUnixPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/facile_cluster_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

std::string
freshFilePath(const char *tag)
{
    static std::atomic<int> counter{0};
    return "/tmp/facile_cluster_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + "_" + tag;
}

::testing::AssertionResult
bitIdentical(const Prediction &a, const Prediction &b)
{
    if (std::memcmp(&a.throughput, &b.throughput, sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "throughput " << a.throughput << " vs " << b.throughput;
    if (std::memcmp(a.componentValue.data(), b.componentValue.data(),
                    sizeof(double) * a.componentValue.size()) != 0)
        return ::testing::AssertionFailure() << "componentValue differs";
    if (a.bottlenecks != b.bottlenecks)
        return ::testing::AssertionFailure() << "bottlenecks differ";
    return ::testing::AssertionSuccess();
}

Prediction
serialPredict(const engine::Request &r)
{
    model::PredictScratch scratch;
    return model::predict(bb::analyze(r.bytes, r.arch), r.loop, r.config,
                          scratch, r.payload);
}

/** N in-process backends, each with its own engine, on unix sockets. */
struct Fleet
{
    std::vector<std::unique_ptr<engine::PredictionEngine>> engines;
    std::vector<std::unique_ptr<server::PredictionServer>> servers;
    std::vector<Endpoint> endpoints;

    explicit Fleet(std::size_t n, int batchWindowUs = 0)
    {
        for (std::size_t i = 0; i < n; ++i) {
            engines.push_back(std::make_unique<engine::PredictionEngine>(
                engine::EngineOptions{.numThreads = 2}));
            server::ServerOptions o;
            o.unixPath = freshUnixPath();
            o.engine = engines.back().get();
            o.batchWindowUs = batchWindowUs;
            servers.push_back(
                std::make_unique<server::PredictionServer>(o));
            servers.back()->start();
            endpoints.push_back(parseEndpoint("unix:" + o.unixPath));
        }
    }

    ~Fleet()
    {
        for (auto &s : servers)
            s->stop();
    }
};

// ---- membership ------------------------------------------------------------

TEST(Membership, ParseEndpoint)
{
    Endpoint u = parseEndpoint("unix:/tmp/a.sock");
    EXPECT_TRUE(u.isUnix());
    EXPECT_EQ(u.path, "/tmp/a.sock");
    EXPECT_EQ(u.label(), "unix:/tmp/a.sock");

    Endpoint t = parseEndpoint("127.0.0.1:9000");
    EXPECT_FALSE(t.isUnix());
    EXPECT_EQ(t.host, "127.0.0.1");
    EXPECT_EQ(t.port, 9000);
    EXPECT_EQ(t.label(), "127.0.0.1:9000");

    EXPECT_THROW(parseEndpoint("unix:"), std::invalid_argument);
    EXPECT_THROW(parseEndpoint("nocolon"), std::invalid_argument);
    EXPECT_THROW(parseEndpoint("host:"), std::invalid_argument);
    EXPECT_THROW(parseEndpoint("host:notaport"), std::invalid_argument);
    EXPECT_THROW(parseEndpoint("host:70000"), std::invalid_argument);
}

TEST(Membership, RouteKeyIsContentAddressed)
{
    const std::vector<std::uint8_t> a = {0x90, 0x90};
    const std::vector<std::uint8_t> b = {0x90, 0x91};
    EXPECT_EQ(routeKey(1, a.data(), a.size()),
              routeKey(1, a.data(), a.size()));
    EXPECT_NE(routeKey(1, a.data(), a.size()),
              routeKey(2, a.data(), a.size()));
    EXPECT_NE(routeKey(1, a.data(), a.size()),
              routeKey(1, b.data(), b.size()));
}

TEST(Membership, RendezvousMovesOnlyTheDeadBackendsKeys)
{
    std::vector<Endpoint> eps;
    for (int i = 0; i < 4; ++i)
        eps.push_back(parseEndpoint("unix:/tmp/backend" +
                                    std::to_string(i) + ".sock"));
    BackendPool pool(eps);

    constexpr std::size_t kKeys = 10000;
    std::vector<std::size_t> before(kKeys);
    std::size_t onDead = 0;
    for (std::size_t k = 0; k < kKeys; ++k) {
        before[k] = pool.pick(k * 0x9e3779b97f4a7c15ULL);
        ASSERT_NE(before[k], BackendPool::npos);
        if (before[k] == 2)
            ++onDead;
    }
    // Sanity: the key space is actually spread (each backend owns a
    // nontrivial share).
    EXPECT_GT(onDead, kKeys / 10);

    pool.setState(2, BackendState::Down);
    for (std::size_t k = 0; k < kKeys; ++k) {
        const std::size_t after = pool.pick(k * 0x9e3779b97f4a7c15ULL);
        ASSERT_NE(after, BackendPool::npos);
        if (before[k] != 2)
            EXPECT_EQ(after, before[k]) << "key " << k << " moved "
                                           "although its backend lives";
        else
            EXPECT_NE(after, 2u);
    }

    // Same endpoints, fresh pool: the assignment is a pure function of
    // the labels, so a router restart reshuffles nothing.
    BackendPool again(eps);
    for (std::size_t k = 0; k < kKeys; ++k)
        EXPECT_EQ(again.pick(k * 0x9e3779b97f4a7c15ULL), before[k]);
}

// ---- router data plane -----------------------------------------------------

TEST(Router, BitIdenticalThroughTwoBackends)
{
    Fleet fleet(2);
    RouterOptions ro;
    ro.unixPath = freshUnixPath();
    ro.backends = fleet.endpoints;
    Router router(ro);
    router.start();

    std::vector<engine::Request> reqs;
    for (const auto &b : suite())
        for (uarch::UArch arch : uarch::allUArchs()) {
            reqs.push_back({b.bytesU, arch, false, {}});
            reqs.push_back({b.bytesL, arch, true, {}});
        }

    auto client = server::Client::connectUnix(ro.unixPath);
    auto out = client.predictMany(reqs);
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(reqs[i])))
            << "request " << i;

    const server::ServerStats rs = router.stats();
    EXPECT_EQ(rs.routedPredicts, reqs.size());
    EXPECT_EQ(rs.backendFailovers, 0u);

    // The shards really are shards: both backends served some of the
    // traffic, and together they served all of it.
    std::uint64_t served = 0;
    for (const auto &ep : fleet.endpoints) {
        auto bc = server::Client::connectUnix(ep.path);
        const std::uint64_t p = bc.stats().predictions;
        EXPECT_GT(p, 0u) << ep.label();
        served += p;
    }
    EXPECT_EQ(served, reqs.size());
    router.stop();
}

TEST(Router, ControlOpsAnsweredLocally)
{
    Fleet fleet(1);
    RouterOptions ro;
    ro.unixPath = freshUnixPath();
    ro.backends = fleet.endpoints;
    Router router(ro);
    router.start();

    auto client = server::Client::connectUnix(ro.unixPath);
    client.ping();
    EXPECT_EQ(client.health(), server::HealthState::Ready);
    // Snapshot administration addresses a specific replica; the router
    // refuses it rather than forwarding somewhere arbitrary.
    EXPECT_FALSE(client.snapshot());
    const server::ServerStats s = client.stats();
    EXPECT_GE(s.requests, 3u);
    EXPECT_EQ(s.predictions, 0u); // the router predicts nothing itself
    router.stop();
}

TEST(Router, NoCrossClientIdLeakage)
{
    Fleet fleet(2);
    RouterOptions ro;
    ro.unixPath = freshUnixPath();
    ro.backends = fleet.endpoints;
    Router router(ro);
    router.start();

    // Two clients pipeline concurrently. Both number their requests
    // from 1 (fresh Client state), so every id collides on the shared
    // backend pipes; each must still get exactly its own answers.
    auto work = [&](int salt) {
        std::vector<engine::Request> reqs;
        for (const auto &b : suite()) {
            engine::Request r{b.bytesL, uarch::UArch::SKL, true, {}};
            r.arch = salt ? uarch::UArch::ICL : uarch::UArch::SKL;
            reqs.push_back(std::move(r));
        }
        auto client = server::Client::connectUnix(ro.unixPath);
        for (int round = 0; round < 20; ++round) {
            auto out = client.predictMany(reqs);
            ASSERT_EQ(out.size(), reqs.size());
            for (std::size_t i = 0; i < reqs.size(); ++i)
                ASSERT_TRUE(bitIdentical(out[i], serialPredict(reqs[i])))
                    << "client " << salt << " round " << round
                    << " request " << i;
        }
    };
    std::thread t1([&] { work(0); });
    std::thread t2([&] { work(1); });
    t1.join();
    t2.join();
    router.stop();
}

TEST(Router, BackendDeathFailsOverWithZeroCallerVisibleFailures)
{
    // Three real backends plus a "blackhole": a socket that accepts
    // the router's connection and swallows forwarded frames without
    // ever answering. Requests routed to it are guaranteed to be
    // pending when its connection is cut, so the failover replay path
    // runs deterministically (killing a real server races with its
    // responses).
    Fleet fleet(3);
    const std::string holePath = freshUnixPath();
    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listenFd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, holePath.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr), 0);
    ASSERT_EQ(::listen(listenFd, 8), 0);
    std::atomic<int> holeConn{-1};
    std::thread hole([&] {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        holeConn.store(fd);
        std::uint8_t buf[4096];
        while (fd >= 0 && ::read(fd, buf, sizeof buf) > 0) {
        }
    });

    RouterOptions ro;
    ro.unixPath = freshUnixPath();
    ro.backends = fleet.endpoints;
    ro.backends.push_back(parseEndpoint("unix:" + holePath));
    // Probes must not declare the blackhole dead before the cut does.
    ro.healthIntervalMs = 10000;
    Router router(ro);
    router.start();

    std::vector<engine::Request> reqs;
    while (reqs.size() < 600)
        for (const auto &b : suite())
            reqs.push_back({b.bytesL, uarch::UArch::SKL, true, {}});

    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ::close(listenFd); // re-dials now fail too
        const int fd = holeConn.load();
        if (fd >= 0)
            ::shutdown(fd, SHUT_RDWR);
    });

    server::RetryPolicy policy;
    policy.opDeadline = std::chrono::milliseconds(60000);
    auto client = server::ResilientClient::forUnix(ro.unixPath, policy);
    auto out = client.predictMany(reqs); // throws on any real failure
    killer.join();
    hole.join();
    if (holeConn.load() >= 0)
        ::close(holeConn.load());
    ::unlink(holePath.c_str());
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_TRUE(bitIdentical(out[i], serialPredict(reqs[i])))
            << "request " << i;

    // The blackhole held its shard's requests when it died; every one
    // of them was replayed to a surviving backend, not failed.
    EXPECT_GT(router.stats().backendFailovers, 0u);

    // The fleet keeps serving after the death, bit-identically.
    auto p = client.predict(suite()[0].bytesU, uarch::UArch::RKL, false);
    EXPECT_TRUE(bitIdentical(
        p, serialPredict({suite()[0].bytesU, uarch::UArch::RKL, false,
                          {}})));
    router.stop();
}

TEST(Router, NoRoutableBackendAnswersOverloaded)
{
    // One backend that never existed: the dial fails synchronously
    // (ENOENT on the unix path), so every PREDICT is shed with the
    // retryable OVERLOADED status — the contract ResilientClient's
    // backoff is built on.
    RouterOptions ro;
    ro.unixPath = freshUnixPath();
    ro.backends = {parseEndpoint("unix:/tmp/facile_cluster_nonexistent_" +
                                 std::to_string(::getpid()) + ".sock")};
    Router router(ro);
    router.start();

    auto client = server::Client::connectUnix(ro.unixPath);
    client.ping(); // control plane still answers
    try {
        client.predict(suite()[0].bytesU, uarch::UArch::SKL, false);
        FAIL() << "expected OVERLOADED";
    } catch (const server::ProtocolError &e) {
        EXPECT_TRUE(e.retryable()) << e.what();
    }
    EXPECT_GT(router.stats().overloadedQueue, 0u);
    router.stop();
}

// ---- snapshot-over-the-wire bootstrap --------------------------------------

TEST(Bootstrap, WireFetchBitIdenticalToLocalSave)
{
    Fleet fleet(1);
    auto client = server::Client::connectUnix(fleet.endpoints[0].path);
    for (const auto &b : suite())
        client.predict(b.bytesL, uarch::UArch::SKL, true);

    const std::vector<std::uint8_t> wire = client.fetchSnapshot();
    const std::vector<std::uint8_t> local =
        analysis::saveSnapshotToMemory(
            {fleet.engines[0].get(), 1, analysis::SnapshotFormat::V2});
    ASSERT_EQ(wire.size(), local.size());
    EXPECT_EQ(std::memcmp(wire.data(), local.data(), wire.size()), 0)
        << "wire image is not bit-identical to a local save";
    EXPECT_EQ(analysis::snapshotImageFormat(wire.data(), wire.size()),
              analysis::SnapshotFormat::V2);
    EXPECT_GT(client.stats().snapshotFetchesServed, 0u);

    // Staging writes it through the atomic path and the ordinary
    // loader serves the warm start from it.
    const std::string path = freshFilePath("boot.snap");
    ASSERT_TRUE(stageFetchedImage(wire.data(), wire.size(), path));
    engine::PredictionEngine fresh({.numThreads = 1});
    const analysis::SnapshotStats st =
        analysis::loadSnapshot(path, {&fresh});
    EXPECT_EQ(st.formatVersion, 2u);
    EXPECT_GT(st.predictions, 0u);
    std::remove(path.c_str());
}

TEST(Bootstrap, TornImageIsRejectedBeforeTouchingDisk)
{
    Fleet fleet(1);
    auto client = server::Client::connectUnix(fleet.endpoints[0].path);
    client.predict(suite()[0].bytesU, uarch::UArch::SKL, false);
    std::vector<std::uint8_t> img = client.fetchSnapshot();
    ASSERT_GT(img.size(), 128u);

    const std::string path = freshFilePath("torn.snap");
    // Truncated mid-stream (a torn fetch) and bit-flipped images both
    // fail the deep validation and nothing lands on disk.
    EXPECT_FALSE(stageFetchedImage(img.data(), img.size() / 2, path));
    std::vector<std::uint8_t> flipped = img;
    flipped[flipped.size() / 2] ^= 0x40;
    EXPECT_FALSE(
        stageFetchedImage(flipped.data(), flipped.size(), path));
    EXPECT_NE(::access(path.c_str(), F_OK), 0)
        << "a rejected image reached the snapshot path";

    // The replica falls back to a cold start: loading the (absent)
    // path throws, exactly as if bootstrap had never been attempted.
    EXPECT_THROW(analysis::loadSnapshot(path, {}),
                 analysis::SnapshotError);
}

TEST(Bootstrap, FetchSnapshotFromPeerEndToEnd)
{
    Fleet fleet(1);
    auto client = server::Client::connectUnix(fleet.endpoints[0].path);
    client.predict(suite()[1].bytesU, uarch::UArch::TGL, false);

    const std::string path = freshFilePath("peer.snap");
    EXPECT_TRUE(fetchSnapshotFromPeer(fleet.endpoints[0], path));
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
    std::remove(path.c_str());

    // A peer that is not there exhausts retries and reports false —
    // bootstrap degrades to a cold start, it never throws out of main.
    server::RetryPolicy fast;
    fast.maxAttempts = 2;
    fast.opDeadline = std::chrono::milliseconds(200);
    fast.breakerThreshold = 1000;
    EXPECT_FALSE(fetchSnapshotFromPeer(
        parseEndpoint("unix:/tmp/facile_cluster_nopeer_" +
                      std::to_string(::getpid()) + ".sock"),
        path, fast));
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

// ---- replica convergence ---------------------------------------------------

TEST(Convergence, FoldsPeerPredictionCacheEntries)
{
    Fleet fleet(2);
    // Each replica serves (and caches) a disjoint slice of traffic.
    auto c0 = server::Client::connectUnix(fleet.endpoints[0].path);
    auto c1 = server::Client::connectUnix(fleet.endpoints[1].path);
    const engine::Request mine{suite()[0].bytesU, uarch::UArch::SKL,
                               false, {}};
    const engine::Request theirs{suite()[1].bytesL, uarch::UArch::ICL,
                                 true, {}};
    c0.predict(mine.bytes, mine.arch, mine.loop);
    c1.predict(theirs.bytes, theirs.arch, theirs.loop);

    // Before convergence replica 0 has never seen `theirs`; afterwards
    // the entry is a prediction-cache hit — the peer's work arrived.
    ConvergenceLoop loop({.peers = {fleet.endpoints[1]},
                          .intervalMs = 60000,
                          .engine = fleet.engines[0].get(),
                          .policy = {}});
    loop.runOnce();
    const ConvergenceStats cs = loop.stats();
    EXPECT_EQ(cs.rounds, 1u);
    EXPECT_EQ(cs.merges, 1u);
    EXPECT_EQ(cs.conflicts, 0u);
    EXPECT_EQ(cs.peerFailures, 0u);

    engine::BatchStats bs;
    const Prediction folded =
        fleet.engines[0]->predictOne(theirs, &bs);
    EXPECT_EQ(bs.predictionCacheHits, 1u)
        << "peer's cached prediction did not fold in";
    EXPECT_TRUE(bitIdentical(folded, serialPredict(theirs)));

    // Convergence is a union fold: replica 0's own entry survived.
    engine::BatchStats bs2;
    fleet.engines[0]->predictOne(mine, &bs2);
    EXPECT_EQ(bs2.predictionCacheHits, 1u);
}

TEST(Convergence, BackgroundLoopConvergesAndStops)
{
    Fleet fleet(2);
    auto c1 = server::Client::connectUnix(fleet.endpoints[1].path);
    const engine::Request theirs{suite()[2].bytesU, uarch::UArch::HSW,
                                 false, {}};
    c1.predict(theirs.bytes, theirs.arch, theirs.loop);

    ConvergenceLoop loop({.peers = {fleet.endpoints[1]},
                          .intervalMs = 20,
                          .engine = fleet.engines[0].get(),
                          .policy = {}});
    loop.start();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (loop.stats().merges == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    loop.stop();
    loop.stop(); // idempotent
    EXPECT_GT(loop.stats().merges, 0u);

    engine::BatchStats bs;
    fleet.engines[0]->predictOne(theirs, &bs);
    EXPECT_EQ(bs.predictionCacheHits, 1u);
}

// ---- soak (the TSan job runs this whole binary) ----------------------------

TEST(ClusterSoak, FourBackendsOneKilledUnderLoad)
{
    Fleet fleet(4);
    RouterOptions ro;
    ro.unixPath = freshUnixPath();
    ro.backends = fleet.endpoints;
    ro.healthIntervalMs = 25;
    Router router(ro);
    router.start();

    std::vector<engine::Request> reqs;
    for (const auto &b : suite())
        for (uarch::UArch arch : uarch::allUArchs())
            reqs.push_back({b.bytesL, arch, true, {}});
    std::vector<Prediction> expected(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        expected[i] = serialPredict(reqs[i]);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> rounds{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t)
        clients.emplace_back([&] {
            server::RetryPolicy policy;
            policy.opDeadline = std::chrono::milliseconds(60000);
            auto rc =
                server::ResilientClient::forUnix(ro.unixPath, policy);
            while (!stop.load()) {
                auto out = rc.predictMany(reqs);
                for (std::size_t i = 0; i < reqs.size(); ++i)
                    ASSERT_TRUE(bitIdentical(out[i], expected[i]))
                        << "request " << i;
                rounds.fetch_add(1);
            }
        });

    // Let traffic flow, kill one backend, keep the load up while the
    // router fails over and the probes mark it dead.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    fleet.servers[2]->stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    stop.store(true);
    for (auto &t : clients)
        t.join();

    EXPECT_GT(rounds.load(), 0u);
    const server::ServerStats rs = router.stats();
    EXPECT_GT(rs.routedPredicts, 0u);
    router.stop();
}

} // namespace
} // namespace facile::cluster
