/**
 * @file
 * Decoder unit tests: known byte sequences, layout facts (length,
 * nominal opcode position, LCP detection), and error handling.
 */
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/decoder.h"
#include "isa/encoder.h"

namespace facile::isa {
namespace {

DecodedInst
dec1(std::vector<std::uint8_t> bytes)
{
    return decodeOne(bytes.data(), bytes.size());
}

TEST(Decoder, AddRegReg)
{
    DecodedInst d = dec1({0x48, 0x01, 0xD8}); // add rax, rbx
    EXPECT_EQ(d.inst.mnem, Mnemonic::ADD);
    ASSERT_EQ(d.inst.ops.size(), 2u);
    EXPECT_EQ(d.inst.ops[0].reg, RAX);
    EXPECT_EQ(d.inst.ops[1].reg, RBX);
    EXPECT_EQ(d.length, 3);
    EXPECT_EQ(d.opcodeOffset, 1); // REX is a prefix
    EXPECT_FALSE(d.lcp);
}

TEST(Decoder, LcpDetection)
{
    // add ax, 0x1234: 66 prefix + imm16 = LCP.
    DecodedInst d = dec1({0x66, 0x81, 0xC0, 0x34, 0x12});
    EXPECT_EQ(d.inst.mnem, Mnemonic::ADD);
    EXPECT_TRUE(d.lcp);
    EXPECT_EQ(d.opcodeOffset, 1);
    EXPECT_EQ(d.length, 5);
}

TEST(Decoder, SixtySixWithoutImm16IsNotLcp)
{
    // add ax, bx: 66 01 d8 — 66 prefix but no immediate.
    DecodedInst d = dec1({0x66, 0x01, 0xD8});
    EXPECT_EQ(d.inst.mnem, Mnemonic::ADD);
    EXPECT_FALSE(d.lcp);
}

TEST(Decoder, TwoByteNopIsNotLcp)
{
    DecodedInst d = dec1({0x66, 0x90});
    EXPECT_EQ(d.inst.mnem, Mnemonic::NOP);
    EXPECT_FALSE(d.lcp);
    EXPECT_EQ(d.length, 2);
}

TEST(Decoder, MultiByteNops)
{
    for (int len = 1; len <= 15; ++len) {
        auto bytes = encode(nop(len));
        DecodedInst d = decodeOne(bytes.data(), bytes.size());
        EXPECT_EQ(d.inst.mnem, Mnemonic::NOP);
        EXPECT_EQ(d.length, len);
        EXPECT_EQ(d.inst.nopLen, len);
    }
}

TEST(Decoder, MemSibDisp)
{
    // mov rax, [rbx+rcx*4+8]
    auto bytes = encode(make(Mnemonic::MOV, {R(RAX), M(memIdx(RBX, RCX, 4, 8))}));
    DecodedInst d = decodeOne(bytes.data(), bytes.size());
    ASSERT_TRUE(d.inst.ops[1].isMem());
    EXPECT_EQ(d.inst.ops[1].mem.base, RBX);
    EXPECT_EQ(d.inst.ops[1].mem.index, RCX);
    EXPECT_EQ(d.inst.ops[1].mem.scale, 4);
    EXPECT_EQ(d.inst.ops[1].mem.disp, 8);
}

TEST(Decoder, VexTwoByte)
{
    DecodedInst d = dec1({0xC5, 0xF0, 0x58, 0xC2}); // vaddps xmm0,xmm1,xmm2
    EXPECT_EQ(d.inst.mnem, Mnemonic::VADDPS);
    ASSERT_EQ(d.inst.ops.size(), 3u);
    EXPECT_EQ(d.inst.ops[0].reg, XMM0);
    EXPECT_EQ(d.inst.ops[1].reg, XMM1);
    EXPECT_EQ(d.inst.ops[2].reg, XMM2);
    EXPECT_EQ(d.opcodeOffset, 2); // VEX bytes count as prefix
}

TEST(Decoder, VexVvvv15IsRegister)
{
    auto bytes =
        encode(make(Mnemonic::VADDPS, {R(XMM0), R(xmm(15)), R(XMM2)}));
    DecodedInst d = decodeOne(bytes.data(), bytes.size());
    EXPECT_EQ(d.inst.ops[1].reg, xmm(15));
}

TEST(Decoder, JccRel8Negative)
{
    DecodedInst d = dec1({0x75, 0xFE}); // jne -2
    EXPECT_EQ(d.inst.mnem, Mnemonic::JCC);
    EXPECT_EQ(d.inst.cc, Cond::NE);
    EXPECT_EQ(d.inst.ops[0].imm, -2);
}

TEST(Decoder, TruncatedInputThrows)
{
    EXPECT_THROW(dec1({0x48}), DecodeError);
    EXPECT_THROW(dec1({0x48, 0x01}), DecodeError);
    EXPECT_THROW(dec1({0x66, 0x81, 0xC0, 0x34}), DecodeError);
}

TEST(Decoder, UnknownOpcodeThrows)
{
    EXPECT_THROW(dec1({0x06}), DecodeError); // invalid in 64-bit mode
}

TEST(Decoder, RipRelativeRejected)
{
    // mod=00 rm=101 is RIP-relative in 64-bit mode; unsupported subset.
    EXPECT_THROW(dec1({0x48, 0x8B, 0x05, 0x00, 0x00, 0x00, 0x00}),
                 DecodeError);
}

TEST(Decoder, DecodeBlockSplitsCorrectly)
{
    std::vector<Inst> insts = {
        make(Mnemonic::ADD, {R(RAX), R(RBX)}),
        nop(5),
        makeCC(Mnemonic::JCC, Cond::NE, {I(-2, 1)}),
    };
    auto bytes = encodeBlock(insts);
    auto decoded = decodeBlock(bytes);
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0].inst.mnem, Mnemonic::ADD);
    EXPECT_EQ(decoded[1].inst.mnem, Mnemonic::NOP);
    EXPECT_EQ(decoded[2].inst.mnem, Mnemonic::JCC);
}

TEST(Decoder, PopcntVsBsf)
{
    // bsf: 0F BC, tzcnt: F3 0F BC
    auto bsf = dec1({0x48, 0x0F, 0xBC, 0xC3});
    EXPECT_EQ(bsf.inst.mnem, Mnemonic::BSF);
    auto tzcnt = dec1({0xF3, 0x48, 0x0F, 0xBC, 0xC3});
    EXPECT_EQ(tzcnt.inst.mnem, Mnemonic::TZCNT);
}

TEST(Decoder, ShiftByOneOpcodeD1)
{
    // shl rax, 1 via D1 /4 (alternate encoding; decoder-only form).
    DecodedInst d = dec1({0x48, 0xD1, 0xE0});
    EXPECT_EQ(d.inst.mnem, Mnemonic::SHL);
    EXPECT_EQ(d.inst.ops[1].imm, 1);
}

} // namespace
} // namespace facile::isa
