/**
 * @file
 * Short soak of the event-driven server data plane: ~1k idle
 * connections parked on the epoll loops while a pipelining client
 * sustains bit-identical traffic through the admission ring, with a
 * read deadline short enough that the sweep runs many times over the
 * test. What this catches that the unit tests cannot: connection
 * counts the thread-per-connection design could never hold (1k stacks
 * vs 1k fds), deadline sweeps walking a large conns list while some
 * entries are mid-traffic, and accept/adopt churn under load.
 *
 * The connection count adapts to RLIMIT_NOFILE so sandboxed runners
 * with tight fd limits soak what they can instead of failing.
 */
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bhive/generator.h"
#include "facile/component.h"
#include "server/client.h"
#include "server/net_util.h"
#include "server/server.h"

namespace facile::server {
namespace {

std::string
soakUnixPath()
{
    return "/tmp/facile_soak_" + std::to_string(::getpid()) + ".sock";
}

int
rawConnectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr),
        0);
    return fd;
}

/** PING round trip on a raw fd; false on any transport hiccup. */
bool
rawPing(int fd, std::uint64_t id)
{
    std::vector<std::uint8_t> frame;
    appendControlRequest(frame, id, Op::Ping);
    if (!sendAll(fd, frame.data(), frame.size()))
        return false;
    std::uint8_t header[kResponseHeaderSize];
    std::size_t got = 0;
    while (got < sizeof header) {
        const ssize_t n =
            ::recv(fd, header + got, sizeof header - got, 0);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    const ResponseHeader h = parseResponseHeader(header);
    return h.id == id && h.len == 0 &&
           h.status == static_cast<std::uint8_t>(Status::Ok);
}

TEST(ServerSoak, ThousandIdleConnectionsWhilePipeliningClientSustains)
{
    // Budget fds: ~1k idle conns + the server's own fds + slack.
    rlimit rl{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &rl), 0);
    const std::size_t idleTarget = std::min<std::size_t>(
        1000, rl.rlim_cur > 200 ? (rl.rlim_cur - 100) / 2 : 50);

    ServerOptions opts;
    opts.unixPath = soakUnixPath();
    opts.maxConnections = idleTarget + 16;
    // Short deadline => the sweep walks the full conns list dozens of
    // times during the soak. Idle-between-frames conns must survive it.
    opts.readTimeoutMs = 250;
    engine::PredictionEngine eng({.numThreads = 2});
    opts.engine = &eng;
    PredictionServer server(opts);
    server.start();

    // Park the idle herd. Each connection completes one PING frame
    // first: a conn that never framed is deadline-eligible (handshake
    // rule), one idling between frames is not.
    std::vector<int> idle;
    idle.reserve(idleTarget);
    for (std::size_t i = 0; i < idleTarget; ++i) {
        const int fd = rawConnectUnix(opts.unixPath);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(rawPing(fd, i + 1)) << "conn " << i;
        idle.push_back(fd);
    }

    // Sustained pipelined traffic over > several deadline periods.
    const auto &suite = bhive::generateSuite(7, 2);
    std::vector<engine::Request> batch;
    for (const auto &b : suite)
        batch.push_back({b.bytesL, uarch::UArch::SKL, true, {}});
    model::PredictScratch scratch;
    std::vector<model::Prediction> expected;
    for (const auto &r : batch)
        expected.push_back(model::predict(bb::analyze(r.bytes, r.arch),
                                          r.loop, r.config, scratch));

    auto client = Client::connectUnix(opts.unixPath);
    std::vector<model::Prediction> out;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(900);
    std::size_t passes = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        client.predictManyInto(batch, out);
        ASSERT_EQ(out.size(), batch.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(std::memcmp(&out[i].throughput,
                                  &expected[i].throughput,
                                  sizeof(double)),
                      0)
                << "pass " << passes << " block " << i;
        ++passes;
    }
    EXPECT_GE(passes, 3u);

    // The idle herd must have survived every sweep: no read timeouts,
    // all connections still open and answering.
    ServerStats s = client.stats();
    EXPECT_EQ(s.readTimeouts, 0u);
    EXPECT_GE(s.connectionsOpen, idleTarget + 1);
    for (std::size_t i = 0; i < idle.size();
         i += std::max<std::size_t>(1, idle.size() / 16))
        EXPECT_TRUE(rawPing(idle[i], 100000 + i)) << "idle conn " << i;

    for (int fd : idle)
        ::close(fd);
    server.stop();
    EXPECT_GE(server.stats().connectionsAccepted, idleTarget + 1);
}

} // namespace
} // namespace facile::server
