#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json perf trajectory.

Compares freshly produced BENCH_{coldpath,throughput,server}.json
against the checked-in baselines at the repo root and fails the job on
a real regression:

  * any boolean gate that is true in the baseline but false in (or
    missing from) the fresh run (bit_identical, warm_bit_identical,
    and the snapshot-v2 load gates — see BOOLEAN_GATES) FAILS
    immediately — these are correctness or order-of-magnitude
    structural gates, not timings (marginal timing-threshold booleans
    like speedup_target_met are intentionally NOT hard gates; the
    tolerance band on their rows covers them);
  * each row's blocks_per_sec is compared *normalized* to the bench's
    serial reference row (coldpath: serial_fresh, throughput: serial,
    server: serial), so a faster or slower CI machine shifts every row
    together and only genuine relative regressions trip the gate.
    A normalized drop > --fail-tol (default 25%) FAILS, > --warn-tol
    (default 10%) warns;
  * with --absolute the raw blocks_per_sec values are gated too — use
    this only when baseline and fresh numbers come from the same
    machine (e.g. a dedicated perf host), never on shared runners.

Override knob: FACILE_BENCH_GATE=off skips the gate entirely (exit 0),
FACILE_BENCH_GATE=warn reports but never fails. Both are meant for
emergencies (e.g. landing a PR that knowingly rebases the perf
trajectory together with new baselines), not for routine use.

--self-test proves the gate actually gates: it first runs the real
comparison (which must pass), then injects a synthetic 50% regression
into the fresh numbers in memory and asserts the comparison fails.

Missing fresh files are skipped with a note (quick CI runs do not
produce every bench); a missing baseline for a produced bench fails.
--require NAME[,NAME...] turns the skip into a failure for the listed
benches: a CI job that is supposed to produce BENCH_server.json must
not silently pass because the bench crashed before writing it.
"""

import argparse
import copy
import json
import os
import sys

BENCHES = ["coldpath", "throughput", "server"]

# The within-file serial reference row each bench's rows are
# normalized against.
REFERENCE_ROW = {
    "coldpath": "serial_fresh",
    "throughput": "serial",
    "server": "serial",
}

# Boolean scalars that must never flip true -> false (and, once true
# in the baseline, must keep appearing in fresh runs — a bench that
# silently stops producing a gate must not pass). Only deterministic
# gates belong here: timing-threshold booleans like coldpath's
# speedup_target_met hover at their cutoff on noisy runners and are
# covered by the tolerance band on the corresponding rows
# (serial_interned vs serial_fresh) instead. The two snapshot-v2 load
# gates are the exception that proves the rule: they compare
# order-of-magnitude structural effects measured in the same run on
# the same machine (v2 mmap bind vs v1 record parse must stay >= 5x,
# and scaling the record universe ~100x must grow the v2 load cost by
# well under half of v1's growth), so a flip means the mmap path
# broke, not that the runner was busy.
BOOLEAN_GATES = [
    "bit_identical",
    "warm_bit_identical",
    "v2_first_predict_identical",
    "v2_load_speedup_met",
    "v2_load_sublinear",
    "wire_bootstrap_identical",
]


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def rows_by_label(doc):
    return {row["label"]: row for row in doc.get("rows", [])}


def compare_bench(name, base, fresh, fail_tol, warn_tol, absolute):
    """Returns (failures, warnings) as lists of messages."""
    failures, warnings = [], []

    for key in BOOLEAN_GATES:
        if base.get(key) is True and fresh.get(key) is False:
            failures.append(
                f"{name}: boolean gate '{key}' flipped true -> false"
            )
        elif base.get(key) is True and key not in fresh:
            failures.append(
                f"{name}: boolean gate '{key}' is in the baseline but "
                f"missing from the fresh run (did its measurement "
                f"round get skipped?)"
            )

    # Quick-suite numbers are not comparable to full-suite numbers:
    # the cached serving rows amortize per-batch overhead over 6x
    # fewer blocks. Gate only like against like; the boolean gates
    # above always apply.
    if bool(base.get("quick_mode")) != bool(fresh.get("quick_mode")):
        warnings.append(
            f"{name}: quick_mode differs between baseline and fresh "
            f"run — row timings skipped (run the gate on full-suite "
            f"numbers)"
        )
        return failures, warnings

    base_rows = rows_by_label(base)
    fresh_rows = rows_by_label(fresh)
    ref_label = REFERENCE_ROW.get(name)
    base_ref = base_rows.get(ref_label, {}).get("blocks_per_sec")
    fresh_ref = fresh_rows.get(ref_label, {}).get("blocks_per_sec")

    for label, base_row in base_rows.items():
        base_bps = base_row.get("blocks_per_sec")
        if base_bps is None:
            continue
        fresh_row = fresh_rows.get(label)
        if fresh_row is None or fresh_row.get("blocks_per_sec") is None:
            warnings.append(f"{name}/{label}: missing from fresh run")
            continue
        fresh_bps = fresh_row["blocks_per_sec"]

        if absolute:
            check_drop(name, label, "blocks/s", base_bps, fresh_bps,
                       fail_tol, warn_tol, failures, warnings)
        if label != ref_label and base_ref and fresh_ref:
            check_drop(name, label, "normalized blocks/s",
                       base_bps / base_ref, fresh_bps / fresh_ref,
                       fail_tol, warn_tol, failures, warnings)
    return failures, warnings


def check_drop(name, label, what, base, fresh, fail_tol, warn_tol,
               failures, warnings):
    if base <= 0:
        return
    drop = 1.0 - fresh / base
    msg = (f"{name}/{label}: {what} {fresh:.3g} vs baseline "
           f"{base:.3g} ({drop:+.1%} regression)")
    if drop > fail_tol:
        failures.append(msg)
    elif drop > warn_tol:
        warnings.append(msg)


def run_gate(args, fresh_docs, base_docs):
    failures, warnings = [], []
    for name in BENCHES:
        base, fresh = base_docs.get(name), fresh_docs.get(name)
        if fresh is None:
            if name in args.require:
                failures.append(
                    f"{name}: required fresh BENCH_{name}.json is "
                    f"missing (did the bench crash before writing "
                    f"it?)"
                )
            else:
                print(f"note: no fresh BENCH_{name}.json — skipped")
            continue
        if base is None:
            failures.append(
                f"{name}: fresh numbers produced but no checked-in "
                f"baseline BENCH_{name}.json"
            )
            continue
        f, w = compare_bench(name, base, fresh, args.fail_tol,
                             args.warn_tol, args.absolute)
        failures += f
        warnings += w

    for msg in warnings:
        print(f"WARN: {msg}")
    for msg in failures:
        print(f"FAIL: {msg}")
    return failures, warnings


def load_docs(directory):
    docs = {}
    for name in BENCHES:
        path = os.path.join(directory, f"BENCH_{name}.json")
        if os.path.exists(path):
            docs[name] = load(path)
    return docs


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default=".",
                    help="directory of checked-in BENCH_*.json")
    ap.add_argument("--fresh", required=True,
                    help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--fail-tol", type=float, default=0.25,
                    help="fail on a normalized drop above this "
                         "fraction (default 0.25)")
    ap.add_argument("--warn-tol", type=float, default=0.10,
                    help="warn on a normalized drop above this "
                         "fraction (default 0.10)")
    ap.add_argument("--absolute", action="store_true",
                    help="also gate raw blocks/s (same-machine "
                         "baselines only)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate passes on the real numbers "
                         "and fails on an injected 50%% regression")
    ap.add_argument("--require", default="",
                    help="comma-separated bench names whose fresh "
                         "BENCH_*.json must exist (missing = FAIL "
                         "instead of skip)")
    args = ap.parse_args()
    args.require = {n for n in args.require.split(",") if n}
    unknown = args.require - set(BENCHES)
    if unknown:
        print(f"error: --require names unknown benches: "
              f"{', '.join(sorted(unknown))} (known: "
              f"{', '.join(BENCHES)})")
        return 2

    knob = os.environ.get("FACILE_BENCH_GATE", "").lower()
    if knob == "off":
        print("FACILE_BENCH_GATE=off — perf gate skipped")
        return 0

    base_docs = load_docs(args.baseline)
    fresh_docs = load_docs(args.fresh)
    if not fresh_docs:
        print(f"error: no BENCH_*.json found in {args.fresh}")
        return 2

    failures, _ = run_gate(args, fresh_docs, base_docs)

    if args.self_test:
        if failures:
            print("self-test: FAILED — the real numbers already "
                  "regress; fix that first")
            return 1
        # Inject a 50% regression into every fresh non-reference row
        # of EVERY bench and require the gate to catch it somewhere.
        # All benches (not just the first) so the self-test still
        # bites when one bench's rows are incomparable — e.g. a
        # quick-mode coldpath run against a full-suite baseline.
        degraded = copy.deepcopy(fresh_docs)
        injected = False
        for name, doc in degraded.items():
            ref = REFERENCE_ROW.get(name)
            for row in doc.get("rows", []):
                if row.get("label") != ref and "blocks_per_sec" in row:
                    row["blocks_per_sec"] *= 0.5
                    injected = True
        if not injected:
            print("self-test: FAILED — nothing to inject into")
            return 1
        print("self-test: injected 50% regression — the FAIL lines "
              "below are expected:")
        inj_failures, _ = run_gate(args, degraded, base_docs)
        if not inj_failures:
            print("self-test: FAILED — injected 50% regression was "
                  "not caught")
            return 1
        print(f"self-test ok: clean pass on real numbers, "
              f"{len(inj_failures)} failure(s) on the injected "
              f"regression")
        return 0

    if failures:
        if knob == "warn":
            print(f"FACILE_BENCH_GATE=warn — {len(failures)} "
                  f"failure(s) downgraded to warnings")
            return 0
        print(f"perf gate: {len(failures)} failure(s)")
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
