#!/usr/bin/env python3
"""CI docs gate: dead links and undocumented subsystems.

Two checks, both over the working tree (no network):

  1. Every relative link or path-like reference in the repo's markdown
     (README.md, docs/, src/*/README.md, fuzz/README.md, ...) must
     resolve to an existing file or directory. Markdown links
     `[text](target)` are checked exactly; backtick-quoted repo paths
     like `src/server/protocol.h` are checked when they look like
     paths (contain a '/' and one of the repo's top-level dirs).
     Absolute URLs (http/https/mailto) and intra-page anchors are
     ignored.

  2. Every subdirectory of src/ must carry a README.md — a subsystem
     without one is invisible to the top-level map in README.md.

Exit 0 when clean; prints one line per violation and exits 1
otherwise. Run from anywhere: paths resolve against the repo root
(the parent of this script's directory).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding absolute URLs and pure anchors.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/like.this` backtick references; conservative on purpose.
TICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+)`")
# Top-level dirs a backtick path must start with to be checked
# (anything else — flag syntax, example paths like /tmp/x — is prose).
CHECKED_ROOTS = ("src/", "docs/", "scripts/", "tests/", "bench/",
                 "fuzz/", "examples/", ".github/")


def md_files():
    for dirpath, dirnames, filenames in os.walk(REPO):
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", "build", "related")
                       and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_target(md_path, target):
    """Resolve `target` against the md file's dir, then the repo root."""
    target = target.split("#", 1)[0]
    if not target:
        return True  # pure anchor
    if re.match(r"^[a-z]+:", target):
        return True  # URL
    base = os.path.dirname(md_path)
    candidates = [target]
    # Repo idioms: `foo.h/.cc` names the header+source pair, and
    # extension-less refs like `fuzz/fuzz_snapshot` name a build
    # target whose source carries an extension.
    if re.search(r"\.(h|cc)/\.(h|cc)$", target):
        candidates.append(target.rsplit("/", 1)[0])
    if not os.path.splitext(target)[1]:
        candidates += [target + ".h", target + ".cc"]
    for cand in candidates:
        if (os.path.exists(os.path.join(base, cand))
                or os.path.exists(os.path.join(REPO, cand))):
            return True
    return False


def main():
    problems = []

    for path in sorted(md_files()):
        rel = os.path.relpath(path, REPO)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        # Strip fenced code blocks: diagrams and shell transcripts are
        # full of path-shaped strings that are not references.
        prose = re.sub(r"```.*?```", "", text, flags=re.S)
        for m in MD_LINK.finditer(prose):
            if not check_target(path, m.group(1)):
                problems.append(f"{rel}: dead link ({m.group(1)})")
        for m in TICK_PATH.finditer(prose):
            t = m.group(1)
            if t.startswith(CHECKED_ROOTS) and not check_target(path, t):
                problems.append(f"{rel}: dead path reference (`{t}`)")

    src = os.path.join(REPO, "src")
    for d in sorted(os.listdir(src)):
        full = os.path.join(src, d)
        if os.path.isdir(full) and \
                not os.path.exists(os.path.join(full, "README.md")):
            problems.append(f"src/{d}/: no README.md")

    for p in problems:
        print(f"FAIL: {p}")
    if problems:
        print(f"docs gate: {len(problems)} problem(s)")
        return 1
    print("docs gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
